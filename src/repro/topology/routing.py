"""Point-to-point routing and closed-form distances for the three topologies.

Every routing function returns the full node sequence from source to
destination (inclusive of both), so ``len(path) - 1`` is the number of unit
routes it takes -- the paper's cost unit.

Star graph
----------
Distance uses the Akers & Krishnamurthy cycle-structure formula: writing the
*relative* permutation (what must still be applied to the source to obtain the
destination) as disjoint cycles, a non-trivial cycle through position 0 of
length ``l`` costs ``l - 1`` generator moves and any other non-trivial cycle
costs ``l + 1``.  Routing uses the matching greedy rule ("if the front symbol
is not home, send it home; otherwise bring any displaced symbol to the
front"), which realises exactly that bound.

Mesh
----
Dimension-order (e-cube style) routing; distance is the Manhattan metric.

Hypercube
---------
E-cube routing (correct differing bits from the lowest dimension up); distance
is the Hamming distance.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.exceptions import InvalidParameterError
from repro.permutations.permutation import is_permutation

Node = Tuple[int, ...]

__all__ = [
    "star_distance",
    "star_distances_from",
    "star_route",
    "star_distance_profile",
    "mesh_distance",
    "mesh_route",
    "hypercube_distance",
    "hypercube_route",
]

try:  # pragma: no cover - exercised indirectly on both branches
    import numpy as _np
except ImportError:  # pragma: no cover - the image bakes NumPy in
    _np = None


# --------------------------------------------------------------------------- star
def _relative_cycles(source: Node, target: Node) -> List[List[int]]:
    """Cycle decomposition of the position permutation taking *source* to *target*.

    Position ``p`` maps to the position where ``source[p]`` must end up, i.e.
    ``target.index(source[p])``.  Only non-trivial cycles are returned.
    """
    n = len(source)
    target_position = {symbol: p for p, symbol in enumerate(target)}
    mapping = [target_position[source[p]] for p in range(n)]
    seen = [False] * n
    cycles: List[List[int]] = []
    for start in range(n):
        if seen[start] or mapping[start] == start:
            seen[start] = True
            continue
        cycle = [start]
        seen[start] = True
        nxt = mapping[start]
        while nxt != start:
            cycle.append(nxt)
            seen[nxt] = True
            nxt = mapping[nxt]
        cycles.append(cycle)
    return cycles


def _check_star_pair(source: Sequence[int], target: Sequence[int]) -> Tuple[Node, Node]:
    source = tuple(source)
    target = tuple(target)
    if len(source) != len(target):
        raise InvalidParameterError("source and target must have the same degree")
    if not is_permutation(source) or not is_permutation(target):
        raise InvalidParameterError("source and target must be permutations")
    return source, target


def star_distance(source: Sequence[int], target: Sequence[int]) -> int:
    """Shortest-path length between two star-graph nodes (closed form)."""
    source, target = _check_star_pair(source, target)
    total = 0
    for cycle in _relative_cycles(source, target):
        if 0 in cycle:
            total += len(cycle) - 1
        else:
            total += len(cycle) + 1
    return total


def star_distance_profile(source: Sequence[int], target: Sequence[int]) -> Tuple[int, int, int]:
    """Return ``(distance, num_nontrivial_cycles, num_displaced_symbols)``.

    Useful for the analysis experiments: the distance equals
    ``m + c`` when position 0 is displaced together with its cycle
    (``m`` displaced symbols, ``c`` non-trivial cycles, the cycle through 0
    contributing ``l - 1`` instead of ``l + 1``).
    """
    source, target = _check_star_pair(source, target)
    cycles = _relative_cycles(source, target)
    displaced = sum(len(c) for c in cycles)
    distance = 0
    for cycle in cycles:
        distance += len(cycle) - 1 if 0 in cycle else len(cycle) + 1
    return distance, len(cycles), displaced


def star_distances_from(origin: Sequence[int]):
    """Distances from *origin* to every permutation of its degree, by rank.

    Entry ``r`` of the result is ``star_distance(origin, unrank(r))``.  The
    closed form ``d = m + c - 2*[position 0 displaced]`` (``m`` displaced
    positions, ``c`` non-trivial cycles of the relative permutation) is
    evaluated for all ``n!`` targets in one vectorised sweep: the relative
    mappings are gathered from the rank-ordered permutation array, displaced
    positions are counted with one comparison, and the non-trivial cycle count
    comes from pointer-doubling cycle-minima (a position is counted once per
    cycle, at the cycle's minimum).  Falls back to a per-node cycle walk when
    NumPy is unavailable.
    """
    source = tuple(origin)
    if not is_permutation(source):
        raise InvalidParameterError(f"{source!r} is not a permutation")
    n = len(source)

    from repro.permutations.ranking import all_permutations_array

    if _np is not None and n <= 10:
        perms = all_permutations_array(n)
        positions = _np.argsort(perms, axis=1)  # positions[r, s] = index of s in row r
        mapping = positions[:, list(source)].astype(_np.int64)
        idx = _np.arange(n, dtype=_np.int64)
        displaced = mapping != idx
        num_displaced = displaced.sum(axis=1, dtype=_np.int64)

        # Cycle minima by pointer doubling: `minima[r, p]` covers a window of
        # `span` orbit nodes starting at p, and `ptr` jumps `span` steps, so
        # combining the window at p with the window at ptr[p] doubles the
        # coverage; log2(n) rounds cover every cycle.
        minima = _np.minimum(idx, mapping)
        ptr = _np.take_along_axis(mapping, mapping, axis=1)
        span = 2
        while span < n:
            minima = _np.minimum(minima, _np.take_along_axis(minima, ptr, axis=1))
            ptr = _np.take_along_axis(ptr, ptr, axis=1)
            span *= 2
        leaders = (minima == idx) & displaced
        num_cycles = leaders.sum(axis=1, dtype=_np.int64)
        return num_displaced + num_cycles - 2 * (mapping[:, 0] != 0)

    from itertools import permutations as _perms

    distances: List[int] = []
    for target in _perms(range(n)):
        position = [0] * n
        for p, symbol in enumerate(target):
            position[symbol] = p
        mapping = [position[source[p]] for p in range(n)]
        total = 0
        seen = [False] * n
        for start in range(n):
            if seen[start] or mapping[start] == start:
                continue
            length = 0
            cursor = start
            while not seen[cursor]:
                seen[cursor] = True
                length += 1
                cursor = mapping[cursor]
            total += length - 1 if start == 0 else length + 1
        distances.append(total)
    return distances


def star_route(source: Sequence[int], target: Sequence[int]) -> List[Node]:
    """An optimal path between two star-graph nodes (greedy cycle routing).

    The returned list starts at *source*, ends at *target* and each
    consecutive pair differs by one generator move; its length minus one
    equals :func:`star_distance`.
    """
    source, target = _check_star_pair(source, target)
    target_position = {symbol: p for p, symbol in enumerate(target)}
    current = list(source)
    path: List[Node] = [tuple(current)]
    n = len(source)

    def is_home(position: int) -> bool:
        return target_position[current[position]] == position

    while tuple(current) != target:
        front_symbol = current[0]
        home = target_position[front_symbol]
        if home != 0:
            # The front symbol is displaced: send it home in one move.
            current[0], current[home] = current[home], current[0]
        else:
            # Front symbol already belongs at the front: bring the first
            # displaced symbol to the front (starts a new cycle).
            j = next(p for p in range(1, n) if not is_home(p))
            current[0], current[j] = current[j], current[0]
        path.append(tuple(current))
    return path


# --------------------------------------------------------------------------- mesh
def _check_mesh_pair(
    source: Sequence[int], target: Sequence[int], sides: Sequence[int]
) -> Tuple[Node, Node, Tuple[int, ...]]:
    source = tuple(source)
    target = tuple(target)
    sides = tuple(sides)
    if not (len(source) == len(target) == len(sides)):
        raise InvalidParameterError("source, target and sides must have equal length")
    for name, coords in (("source", source), ("target", target)):
        for c, s in zip(coords, sides):
            if not (0 <= c < s):
                raise InvalidParameterError(f"{name} coordinate {c} out of range for side {s}")
    return source, target, sides


def mesh_distance(source: Sequence[int], target: Sequence[int], sides: Sequence[int]) -> int:
    """Manhattan distance on a mesh without wraparound."""
    source, target, _ = _check_mesh_pair(source, target, sides)
    return sum(abs(a - b) for a, b in zip(source, target))


def mesh_route(source: Sequence[int], target: Sequence[int], sides: Sequence[int]) -> List[Node]:
    """Dimension-order route: correct coordinate 0 first, then 1, and so on."""
    source, target, _ = _check_mesh_pair(source, target, sides)
    current = list(source)
    path: List[Node] = [tuple(current)]
    for dim in range(len(sides)):
        step = 1 if target[dim] > current[dim] else -1
        while current[dim] != target[dim]:
            current[dim] += step
            path.append(tuple(current))
    return path


# ---------------------------------------------------------------------- hypercube
def _check_cube_pair(source: Sequence[int], target: Sequence[int]) -> Tuple[Node, Node]:
    source = tuple(source)
    target = tuple(target)
    if len(source) != len(target):
        raise InvalidParameterError("source and target must have the same dimension")
    for name, coords in (("source", source), ("target", target)):
        if any(bit not in (0, 1) for bit in coords):
            raise InvalidParameterError(f"{name} must be a tuple of bits, got {coords!r}")
    return source, target


def hypercube_distance(source: Sequence[int], target: Sequence[int]) -> int:
    """Hamming distance between two hypercube nodes (bit tuples)."""
    source, target = _check_cube_pair(source, target)
    return sum(1 for a, b in zip(source, target) if a != b)


def hypercube_route(source: Sequence[int], target: Sequence[int]) -> List[Node]:
    """E-cube route: flip differing bits from dimension 0 upwards."""
    source, target = _check_cube_pair(source, target)
    current = list(source)
    path: List[Node] = [tuple(current)]
    for dim in range(len(source)):
        if current[dim] != target[dim]:
            current[dim] = target[dim]
            path.append(tuple(current))
    return path

"""Point-to-point routing and closed-form distances for the three topologies.

Every routing function returns the full node sequence from source to
destination (inclusive of both), so ``len(path) - 1`` is the number of unit
routes it takes -- the paper's cost unit.

Star graph
----------
Distance uses the Akers & Krishnamurthy cycle-structure formula: writing the
*relative* permutation (what must still be applied to the source to obtain the
destination) as disjoint cycles, a non-trivial cycle through position 0 of
length ``l`` costs ``l - 1`` generator moves and any other non-trivial cycle
costs ``l + 1``.  Routing uses the matching greedy rule ("if the front symbol
is not home, send it home; otherwise bring any displaced symbol to the
front"), which realises exactly that bound.

Mesh
----
Dimension-order (e-cube style) routing; distance is the Manhattan metric.

Hypercube
---------
E-cube routing (correct differing bits from the lowest dimension up); distance
is the Hamming distance.

Whole-graph index services
--------------------------
On top of the point-to-point closed forms this module hosts the vectorised
whole-graph services of the adjacency-index backend (PR 3): frontier-sweep BFS
over ``Topology.neighbor_index_table()`` (:func:`bfs_distances_from`,
:func:`distance_matrix`, :func:`distance_summary`), alive-mask connectivity
(:func:`connected_under_alive_mask`) and batched pairwise star distances
(:func:`star_distances_between`).  Every service is bit-identical to the
retained tuple/dict BFS references (see ``tests/topology/test_index_services``)
and falls back to pure-Python sweeps when NumPy is unavailable.

The NumPy sweeps process node-index blocks of ``REPRO_CHUNK_NODES`` at a time
(:func:`index_bfs_distances`, the chunked :func:`star_distances_from`) so
peak RSS stays bounded through the memmap-tier degrees (11-12, see
:mod:`repro.tables`), and dispatch to compiled loops under
``REPRO_BACKEND=numba`` -- both exactly, with the unchunked NumPy path as the
parity oracle (``tests/tables/``).

The neighbour-source seam
-------------------------
Since PR 8 the whole-graph kernels no longer insist on a materialised
adjacency table: they consume a :class:`NeighborSource`, which serves
neighbour-index blocks either from a dense/memmap table
(:class:`TableNeighborSource`) or computed on the fly as
``unrank -> apply generator -> rank`` with no table anywhere
(:class:`ImplicitNeighborSource`, backed by
:func:`repro.permutations.ranking.implicit_neighbor_block`).  For the
permutation Cayley families :func:`permutation_neighbor_source` picks the
source from ``REPRO_NEIGHBORS`` (``auto`` serves tables through
``MAX_TABLE_DEGREE`` and goes implicit beyond it), and
``Topology.neighbor_source()`` hands the right one to every sweep.  The seam
is exact: implicit blocks are bit-identical to the table rows, so BFS,
connectivity floods and embedding tallies return the same arrays from either
source at every chunk size (``tests/tables/test_implicit_neighbors.py``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro import telemetry
from repro.exceptions import InvalidParameterError
from repro.permutations.permutation import is_permutation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.topology.base import Topology

Node = Tuple[int, ...]

__all__ = [
    "star_distance",
    "star_distances_from",
    "star_distances_between",
    "star_route",
    "star_distance_profile",
    "mesh_distance",
    "mesh_route",
    "hypercube_distance",
    "hypercube_route",
    "NeighborSource",
    "TableNeighborSource",
    "ImplicitNeighborSource",
    "as_neighbor_source",
    "permutation_neighbor_source",
    "BoundedBall",
    "bounded_bfs_ball",
    "index_bfs_distances",
    "bfs_distances_from",
    "distance_matrix",
    "DistanceSummary",
    "distance_summary",
    "connected_under_alive_mask",
]

try:  # pragma: no cover - exercised indirectly on both branches
    import numpy as _np
except ImportError:  # pragma: no cover - the image bakes NumPy in
    _np = None


# --------------------------------------------------------------------------- star
def _relative_cycles(source: Node, target: Node) -> List[List[int]]:
    """Cycle decomposition of the position permutation taking *source* to *target*.

    Position ``p`` maps to the position where ``source[p]`` must end up, i.e.
    ``target.index(source[p])``.  Only non-trivial cycles are returned.
    """
    n = len(source)
    target_position = {symbol: p for p, symbol in enumerate(target)}
    mapping = [target_position[source[p]] for p in range(n)]
    seen = [False] * n
    cycles: List[List[int]] = []
    for start in range(n):
        if seen[start] or mapping[start] == start:
            seen[start] = True
            continue
        cycle = [start]
        seen[start] = True
        nxt = mapping[start]
        while nxt != start:
            cycle.append(nxt)
            seen[nxt] = True
            nxt = mapping[nxt]
        cycles.append(cycle)
    return cycles


def _check_star_pair(source: Sequence[int], target: Sequence[int]) -> Tuple[Node, Node]:
    source = tuple(source)
    target = tuple(target)
    if len(source) != len(target):
        raise InvalidParameterError("source and target must have the same degree")
    if not is_permutation(source) or not is_permutation(target):
        raise InvalidParameterError("source and target must be permutations")
    return source, target


def star_distance(source: Sequence[int], target: Sequence[int]) -> int:
    """Shortest-path length between two star-graph nodes (closed form)."""
    source, target = _check_star_pair(source, target)
    total = 0
    for cycle in _relative_cycles(source, target):
        if 0 in cycle:
            total += len(cycle) - 1
        else:
            total += len(cycle) + 1
    return total


def star_distance_profile(source: Sequence[int], target: Sequence[int]) -> Tuple[int, int, int]:
    """Return ``(distance, num_nontrivial_cycles, num_displaced_symbols)``.

    Useful for the analysis experiments: the distance equals
    ``m + c`` when position 0 is displaced together with its cycle
    (``m`` displaced symbols, ``c`` non-trivial cycles, the cycle through 0
    contributing ``l - 1`` instead of ``l + 1``).
    """
    source, target = _check_star_pair(source, target)
    cycles = _relative_cycles(source, target)
    displaced = sum(len(c) for c in cycles)
    distance = 0
    for cycle in cycles:
        distance += len(cycle) - 1 if 0 in cycle else len(cycle) + 1
    return distance, len(cycles), displaced


def star_distances_from(origin: Sequence[int], *, chunk_nodes=None):
    """Distances from *origin* to every permutation of its degree, by rank.

    Entry ``r`` of the result is ``star_distance(origin, unrank(r))``.  The
    closed form ``d = m + c - 2*[position 0 displaced]`` (``m`` displaced
    positions, ``c`` non-trivial cycles of the relative permutation) is
    evaluated for all ``n!`` targets in rank-block sweeps: each block's
    permutations come as views of the cached population array at dense-tier
    degrees, or are unranked on the fly above it
    (:func:`~repro.permutations.ranking.permutations_slice` -- no ``(n!, n)``
    array is materialised at the memmap tier), the relative mappings are
    gathered, displaced positions are counted with one comparison, and the
    non-trivial cycle count comes from pointer-doubling cycle-minima (a
    position is counted once per cycle, at the cycle's minimum).  Chunking is
    exact -- every ``chunk_nodes`` (default ``REPRO_CHUNK_NODES``) produces
    bit-identical results -- and is what keeps peak RSS bounded through the
    memmap-tier degrees.  With ``REPRO_BACKEND=numba`` each block runs the
    compiled per-row cycle walk instead of the pointer-doubling oracle.
    Falls back to a per-node cycle walk when NumPy is unavailable.
    """
    source = tuple(origin)
    if not is_permutation(source):
        raise InvalidParameterError(f"{source!r} is not a permutation")
    n = len(source)

    from repro.permutations.ranking import (
        MAX_DENSE_DEGREE,
        all_permutations_array,
        factorials,
        permutations_slice,
        within_int64_rank_degree,
    )

    if _np is not None and within_int64_rank_degree(n):
        from repro.backend import resolve_chunk_nodes, use_numba

        kernel = None
        if use_numba():
            from repro._numba_kernels import cycle_distances_kernel as kernel

        if n <= MAX_DENSE_DEGREE:
            # Dense tier: rank blocks are views of the cached population
            # array -- no per-call unranking.
            perms_all = all_permutations_array(n)

            def perm_block(start, stop):
                return perms_all[start:stop]

        else:
            # Memmap tier: no (n!, n) array exists; unrank on the fly.
            def perm_block(start, stop):
                return permutations_slice(start, stop, n)

        total = factorials(n)[n]
        chunk = resolve_chunk_nodes(chunk_nodes)
        source_columns = list(source)
        distances = _np.empty(total, dtype=_np.int64)
        with telemetry.span(
            "kernel.distance_sweep",
            degree=n,
            num_nodes=total,
            chunks=-(-total // chunk),
            backend="numba" if kernel is not None else "numpy",
            tier="dense" if n <= MAX_DENSE_DEGREE else "streamed",
        ):
            for start in range(0, total, chunk):
                stop = min(start + chunk, total)
                perms = perm_block(start, stop)
                # positions[r, s] = index of symbol s in row r
                positions = _np.argsort(perms, axis=1)
                mapping = positions[:, source_columns].astype(_np.int64)
                if kernel is not None:
                    distances[start:stop] = kernel(mapping)
                else:
                    distances[start:stop] = _cycle_structure_distances(mapping)
        return distances

    from itertools import permutations as _perms

    distances: List[int] = []
    for target in _perms(range(n)):
        position = [0] * n
        for p, symbol in enumerate(target):
            position[symbol] = p
        mapping = [position[source[p]] for p in range(n)]
        distances.append(_cycle_distance_of_mapping(mapping))
    return distances


def _cycle_structure_distances(mapping):
    """Vectorised ``d = m + c - 2*[position 0 displaced]`` over mapping rows.

    Row ``r`` of *mapping* is the relative position permutation of one
    (source, target) pair; the non-trivial-cycle count comes from
    pointer-doubling cycle-minima: ``minima[r, p]`` covers a window of ``span``
    orbit nodes starting at ``p`` and ``ptr`` jumps ``span`` steps, so
    combining the window at ``p`` with the window at ``ptr[p]`` doubles the
    coverage -- log2(n) rounds cover every cycle, and each cycle is counted
    once (at its minimum).
    """
    n = mapping.shape[1]
    idx = _np.arange(n, dtype=_np.int64)
    displaced = mapping != idx
    num_displaced = displaced.sum(axis=1, dtype=_np.int64)
    minima = _np.minimum(idx, mapping)
    ptr = _np.take_along_axis(mapping, mapping, axis=1)
    span = 2
    while span < n:
        minima = _np.minimum(minima, _np.take_along_axis(minima, ptr, axis=1))
        ptr = _np.take_along_axis(ptr, ptr, axis=1)
        span *= 2
    leaders = (minima == idx) & displaced
    num_cycles = leaders.sum(axis=1, dtype=_np.int64)
    return num_displaced + num_cycles - 2 * (mapping[:, 0] != 0)


def _cycle_distance_of_mapping(mapping: Sequence[int]) -> int:
    """Scalar cycle-structure distance of one relative position permutation."""
    total = 0
    n = len(mapping)
    seen = [False] * n
    for start in range(n):
        if seen[start] or mapping[start] == start:
            continue
        length = 0
        cursor = start
        while not seen[cursor]:
            seen[cursor] = True
            length += 1
            cursor = mapping[cursor]
        total += length - 1 if start == 0 else length + 1
    return total


def star_distances_between(sources, targets):
    """Batched star distances between row-aligned permutation arrays.

    ``sources`` and ``targets`` are ``(m, n)`` batches (NumPy arrays or
    sequences of tuples); entry ``r`` of the result is
    ``star_distance(sources[r], targets[r])`` evaluated through the
    cycle-structure closed form in one vectorised sweep.  Rows are not
    re-validated (fast-core helper, like
    :func:`repro.permutations.ranking.ranks_of`).  Returns a NumPy ``int64``
    array when NumPy is available, else a list.
    """
    if _np is not None:
        source_rows = _np.asarray(sources)
        target_rows = _np.asarray(targets)
        if source_rows.ndim != 2 or source_rows.shape != target_rows.shape:
            raise InvalidParameterError(
                "star_distances_between expects two equal-shape (m, n) batches"
            )
        positions = _np.argsort(target_rows, axis=1)
        mapping = _np.take_along_axis(
            positions, source_rows.astype(_np.int64), axis=1
        )
        return _cycle_structure_distances(mapping)

    sources = list(sources)
    targets = list(targets)
    if len(sources) != len(targets) or any(
        len(source) != len(target) for source, target in zip(sources, targets)
    ):
        raise InvalidParameterError(
            "star_distances_between expects two equal-shape (m, n) batches"
        )
    distances: List[int] = []
    for source, target in zip(sources, targets):
        n = len(source)
        position = [0] * n
        for p, symbol in enumerate(target):
            position[symbol] = p
        distances.append(_cycle_distance_of_mapping([position[s] for s in source]))
    return distances


def star_route(source: Sequence[int], target: Sequence[int]) -> List[Node]:
    """An optimal path between two star-graph nodes (greedy cycle routing).

    The returned list starts at *source*, ends at *target* and each
    consecutive pair differs by one generator move; its length minus one
    equals :func:`star_distance`.
    """
    source, target = _check_star_pair(source, target)
    target_position = {symbol: p for p, symbol in enumerate(target)}
    current = list(source)
    path: List[Node] = [tuple(current)]
    n = len(source)

    def is_home(position: int) -> bool:
        return target_position[current[position]] == position

    while tuple(current) != target:
        front_symbol = current[0]
        home = target_position[front_symbol]
        if home != 0:
            # The front symbol is displaced: send it home in one move.
            current[0], current[home] = current[home], current[0]
        else:
            # Front symbol already belongs at the front: bring the first
            # displaced symbol to the front (starts a new cycle).
            j = next(p for p in range(1, n) if not is_home(p))
            current[0], current[j] = current[j], current[0]
        path.append(tuple(current))
    return path


# --------------------------------------------------------------------------- mesh
def _check_mesh_pair(
    source: Sequence[int], target: Sequence[int], sides: Sequence[int]
) -> Tuple[Node, Node, Tuple[int, ...]]:
    source = tuple(source)
    target = tuple(target)
    sides = tuple(sides)
    if not (len(source) == len(target) == len(sides)):
        raise InvalidParameterError("source, target and sides must have equal length")
    for name, coords in (("source", source), ("target", target)):
        for c, s in zip(coords, sides):
            if not (0 <= c < s):
                raise InvalidParameterError(f"{name} coordinate {c} out of range for side {s}")
    return source, target, sides


def mesh_distance(source: Sequence[int], target: Sequence[int], sides: Sequence[int]) -> int:
    """Manhattan distance on a mesh without wraparound."""
    source, target, _ = _check_mesh_pair(source, target, sides)
    return sum(abs(a - b) for a, b in zip(source, target))


def mesh_route(source: Sequence[int], target: Sequence[int], sides: Sequence[int]) -> List[Node]:
    """Dimension-order route: correct coordinate 0 first, then 1, and so on."""
    source, target, _ = _check_mesh_pair(source, target, sides)
    current = list(source)
    path: List[Node] = [tuple(current)]
    for dim in range(len(sides)):
        step = 1 if target[dim] > current[dim] else -1
        while current[dim] != target[dim]:
            current[dim] += step
            path.append(tuple(current))
    return path


# ---------------------------------------------------------------------- hypercube
def _check_cube_pair(source: Sequence[int], target: Sequence[int]) -> Tuple[Node, Node]:
    source = tuple(source)
    target = tuple(target)
    if len(source) != len(target):
        raise InvalidParameterError("source and target must have the same dimension")
    for name, coords in (("source", source), ("target", target)):
        if any(bit not in (0, 1) for bit in coords):
            raise InvalidParameterError(f"{name} must be a tuple of bits, got {coords!r}")
    return source, target


def hypercube_distance(source: Sequence[int], target: Sequence[int]) -> int:
    """Hamming distance between two hypercube nodes (bit tuples)."""
    source, target = _check_cube_pair(source, target)
    return sum(1 for a, b in zip(source, target) if a != b)


def hypercube_route(source: Sequence[int], target: Sequence[int]) -> List[Node]:
    """E-cube route: flip differing bits from dimension 0 upwards."""
    source, target = _check_cube_pair(source, target)
    current = list(source)
    path: List[Node] = [tuple(current)]
    for dim in range(len(source)):
        if current[dim] != target[dim]:
            current[dim] = target[dim]
            path.append(tuple(current))
    return path


# ------------------------------------------------------- neighbour sources
class NeighborSource:
    """Where a whole-graph kernel reads adjacency from (the PR-8 seam).

    A source answers block queries over node indices instead of exposing one
    giant array, so the same frontier sweeps serve dense tables, memmap
    tables and table-free implicit adjacency unchanged:

    * ``num_nodes`` / ``width`` -- graph size and max degree;
    * ``neighbor_block(indices)`` -- the ``(m, width)`` neighbour-index rows
      of *indices* (``-1``-padded for irregular graphs);
    * ``neighbor_along(indices, generators)`` -- one neighbour per row, along
      a scalar generator index or a per-row generator-index array (the shape
      the batched embedding tally gathers);
    * ``table`` -- the materialised ``(num_nodes, width)`` array when one
      exists, else ``None`` (kernels use it to decide whether a whole-graph
      compiled sweep may run over a single array).

    Sources are exact and interchangeable: for the same graph every source
    returns identical blocks, which the parity suite enforces.
    """

    table = None

    def neighbor_block(self, indices):
        raise NotImplementedError

    def neighbor_along(self, indices, generators):
        raise NotImplementedError


class TableNeighborSource(NeighborSource):
    """Adjacency served from a materialised (dense or memmap) index table."""

    def __init__(self, table, num_nodes=None):
        self._table = table
        if num_nodes is None:
            num_nodes = len(table)
        self._num_nodes = int(num_nodes)

    @property
    def table(self):
        """The backing ``(num_nodes, width)`` array (never ``None`` here)."""
        return self._table

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def width(self) -> int:
        shape = getattr(self._table, "shape", None)
        if shape is not None:
            return int(shape[1])
        return len(self._table[0])

    def neighbor_block(self, indices):
        """Rows ``table[indices]`` -- a fancy-index gather (memmap pages in)."""
        return self._table[_np.asarray(indices, dtype=_np.int64)]

    def neighbor_along(self, indices, generators):
        """``table[indices, generators]`` with scalar or per-row generators."""
        return self._table[
            _np.asarray(indices, dtype=_np.int64), generators
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TableNeighborSource(num_nodes={self._num_nodes}, width={self.width})"


class ImplicitNeighborSource(NeighborSource):
    """Table-free adjacency for a permutation Cayley graph.

    Blocks are computed on demand as ``unrank -> apply generator -> rank``
    (:func:`repro.permutations.ranking.implicit_neighbor_block`); nothing is
    materialised in RAM or on disk, so the source works at any degree whose
    ranks fit in int64 (``n <= 20``) -- past the memmap-table ceiling.
    ``table`` is ``None``: kernels that want one compiled whole-graph sweep
    fall back to the chunked frontier, whose per-block work still dispatches
    to numba under ``REPRO_BACKEND=numba``.
    """

    def __init__(self, generators, n: int):
        from repro.permutations.ranking import (
            _check_generators,
            factorials,
            require_int64_rank_degree,
        )

        self._generators = tuple(tuple(g) for g in generators)
        self._n = int(n)
        require_int64_rank_degree(self._n)
        _check_generators(self._generators, self._n)
        self._num_nodes = factorials(self._n)[self._n]

    @property
    def generators(self):
        """The generator set, in the same order as the table columns."""
        return self._generators

    @property
    def n(self) -> int:
        """The permutation degree (number of symbols)."""
        return self._n

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def width(self) -> int:
        return len(self._generators)

    def neighbor_block(self, indices):
        """The ``(m, width)`` neighbour ranks of *indices*, computed on the fly."""
        from repro.permutations.ranking import implicit_neighbor_block

        return implicit_neighbor_block(indices, self._generators, self._n)

    def neighbor_along(self, indices, generators):
        """One neighbour per row along scalar or per-row generator indices."""
        from repro.permutations.ranking import implicit_neighbor_block

        indices = _np.asarray(indices, dtype=_np.int64)
        if _np.ndim(generators) == 0:
            column = self._generators[int(generators)]
            return implicit_neighbor_block(indices, (column,), self._n)[:, 0]
        block = implicit_neighbor_block(indices, self._generators, self._n)
        return block[
            _np.arange(indices.shape[0]), _np.asarray(generators, dtype=_np.int64)
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ImplicitNeighborSource(n={self._n}, width={self.width})"


def as_neighbor_source(source, num_nodes=None) -> NeighborSource:
    """Coerce *source* -- a :class:`NeighborSource` or a raw table -- to a source.

    The adapter that lets :func:`index_bfs_distances` keep accepting the bare
    adjacency arrays its PR-3 callers pass while new callers hand it
    ``Topology.neighbor_source()`` directly.
    """
    if isinstance(source, NeighborSource):
        return source
    return TableNeighborSource(source, num_nodes)


def permutation_neighbor_source(generators, n: int, table_supplier) -> NeighborSource:
    """Select the adjacency source for a permutation Cayley graph.

    ``REPRO_NEIGHBORS`` decides (read at call time): ``table`` always serves
    the materialised/memmap table from *table_supplier* (raising the usual
    :class:`~repro.exceptions.TableDegreeError` past the table ceiling),
    ``implicit`` always computes blocks on the fly, and ``auto`` -- the
    default -- uses tables through
    :data:`~repro.permutations.ranking.MAX_TABLE_DEGREE` and switches to the
    implicit source beyond it, which is what makes degree-13+ sweeps possible
    with no table on disk.
    """
    from repro.backend import neighbor_mode
    from repro.permutations.ranking import within_table_degree

    mode = neighbor_mode()
    if mode == "implicit" or (mode == "auto" and not within_table_degree(n)):
        return ImplicitNeighborSource(generators, n)
    return TableNeighborSource(table_supplier())


# ------------------------------------------------------ whole-graph services
def _is_star(topology: "Topology") -> bool:
    from repro.topology.star import StarGraph

    return isinstance(topology, StarGraph)


def index_bfs_distances(
    table, num_nodes: int, origin_index: int, *, alive_mask=None, chunk_nodes=None
):
    """Frontier-sweep BFS over an adjacency source (NumPy required).

    The one chunked sweep behind :func:`bfs_distances_from`,
    :func:`connected_under_alive_mask` and the masked rerouting floods
    (:mod:`repro.simulation.rerouting`): each frontier is processed in
    ``chunk_nodes`` blocks (default ``REPRO_CHUNK_NODES``), newly reached
    nodes are marked at the current level and the next frontier is recovered
    as ``flatnonzero(distances == level)`` -- the same sorted node set the
    unchunked ``np.unique`` sweep produced, so chunking is bit-exact while
    per-level gathers stay ``O(chunk * degree)``.  *table* may be an in-RAM
    array, a memmap (the out-of-core tier pages rows in on demand) or any
    :class:`NeighborSource` -- including the table-free implicit source,
    which computes each frontier block's neighbours on the fly.

    ``alive_mask`` (boolean, indexed by node) restricts the sweep to
    surviving nodes; dead nodes are impassable and keep distance ``-1``.
    With ``REPRO_BACKEND=numba`` and a materialised table the whole sweep
    runs as one compiled array-queue BFS (BFS levels are unique, so traversal
    order cannot change the distances); for table-free sources the chunked
    frontier runs instead and each block's ``unrank -> apply -> rank`` work
    dispatches to the compiled implicit-neighbour kernel.
    """
    from repro.backend import resolve_chunk_nodes, use_numba

    source = as_neighbor_source(table, num_nodes)
    sp = telemetry.span(
        "kernel.bfs",
        num_nodes=int(num_nodes),
        neighbor_source="table" if source.table is not None else "implicit",
        masked=alive_mask is not None,
    )
    if use_numba() and source.table is not None:
        with sp:
            sp.add(backend="numba", mode="whole_graph")
            from repro._numba_kernels import bfs_distances_kernel

            mask = (
                alive_mask
                if alive_mask is not None
                else _np.ones(num_nodes, dtype=bool)
            )
            distances = bfs_distances_kernel(
                _np.asarray(source.table),
                int(origin_index),
                _np.asarray(mask, dtype=bool),
            )
            if telemetry.trace_enabled():
                sp.add(reached=int((distances >= 0).sum()))
            return distances

    chunk = resolve_chunk_nodes(chunk_nodes)
    with sp:
        sp.add(backend="numpy", mode="frontier", chunk_nodes=chunk)
        blocks = 0
        distances = _np.full(num_nodes, -1, dtype=_np.int64)
        distances[origin_index] = 0
        frontier = _np.array([origin_index], dtype=_np.int64)
        level = 0
        while frontier.size:
            level += 1
            found = False
            for start in range(0, frontier.size, chunk):
                block = frontier[start : start + chunk]
                blocks += 1
                candidates = source.neighbor_block(block).reshape(-1)
                candidates = candidates[candidates >= 0]
                if alive_mask is not None:
                    candidates = candidates[
                        alive_mask[candidates] & (distances[candidates] < 0)
                    ]
                else:
                    candidates = candidates[distances[candidates] < 0]
                if candidates.size:
                    distances[candidates] = level
                    found = True
            if not found:
                break
            frontier = _np.flatnonzero(distances == level)
        if telemetry.trace_enabled():
            sp.add(
                chunks=blocks,
                levels=level,
                reached=int((distances >= 0).sum()),
            )
        return distances


@dataclass(frozen=True)
class BoundedBall:
    """The depth-``max_depth`` BFS ball of one origin, as sparse arrays.

    The return shape of :func:`bounded_bfs_ball` -- the whole-graph
    ``distances`` array of :func:`index_bfs_distances` does not exist at
    S_13+ (6.2 billion int64 entries), so the bounded sweep reports only the
    nodes it actually reached:

    Attributes
    ----------
    nodes : int64 array
        The reached node indices (origin included), **sorted ascending** so
        membership queries are ``searchsorted`` lookups.
    distances : int64 array
        Aligned with ``nodes``: ``distances[i]`` is the BFS distance of
        ``nodes[i]`` from the origin (exact -- a bounded BFS distance is a
        true shortest-path distance for every node it reaches).
    truncated : bool
        ``True`` when the sweep stopped *because of the depth cap* with a
        non-empty final frontier -- nodes beyond ``max_depth`` may exist and
        their absence from the ball proves nothing.  ``False`` means the
        frontier died before the cap: the ball is the origin's entire
        connected component (minus excluded nodes) and absence **is**
        disconnection.
    levels : int
        Deepest level actually populated (``<= max_depth``).
    """

    nodes: "object"
    distances: "object"
    truncated: bool
    levels: int

    @property
    def size(self) -> int:
        """Number of reached nodes, origin included."""
        return int(len(self.nodes))

    def distance_of(self, targets):
        """Ball distances of *targets* (int64 array): ``-1`` when not in the ball.

        A ``-1`` means "not reached within ``max_depth``"; whether that is
        disconnection or truncation is the :attr:`truncated` flag's call.
        """
        if _np is None:
            lookup = {int(n): int(d) for n, d in zip(self.nodes, self.distances)}
            return [lookup.get(int(t), -1) for t in targets]
        targets = _np.asarray(targets, dtype=_np.int64)
        positions = _np.searchsorted(self.nodes, targets)
        positions = _np.minimum(positions, len(self.nodes) - 1)
        found = self.nodes[positions] == targets
        out = _np.full(targets.shape, -1, dtype=_np.int64)
        out[found] = self.distances[positions[found]]
        return out


def _in_sorted(values, sorted_array):
    """Boolean mask: which *values* occur in *sorted_array* (both int64)."""
    if sorted_array.size == 0:
        return _np.zeros(values.shape, dtype=bool)
    positions = _np.searchsorted(sorted_array, values)
    positions = _np.minimum(positions, sorted_array.size - 1)
    return sorted_array[positions] == values


def bounded_bfs_ball(
    source,
    origin_index: int,
    *,
    max_depth: int,
    excluded=None,
    chunk_nodes=None,
) -> BoundedBall:
    """Truncated frontier BFS: the depth-capped ball around *origin_index*.

    The depth-capped entry point of the sampled S_13+ campaigns
    (:mod:`repro.simulation.sampled_campaign`): where
    :func:`index_bfs_distances` allocates a whole-graph distances array,
    this sweep touches **only the ball it reaches** -- visited bookkeeping is
    a sorted int64 array that grows with the ball, never with ``n!`` -- so it
    runs on the table-free implicit source at any int64-rank degree.

    Parameters
    ----------
    source : NeighborSource or adjacency table
        Where neighbour blocks come from (:func:`as_neighbor_source`); pass
        an :class:`ImplicitNeighborSource` for the table-free path.
    origin_index : int
        Node index the ball grows from (must not be excluded).
    max_depth : int
        Inclusive BFS depth cap; level ``max_depth`` nodes are still
        reported, the frontier is simply not expanded past them.
    excluded : sorted int64 array, optional
        Impassable node indices (the campaign's fault set), **sorted
        ascending**.  Excluded nodes are never visited nor traversed --
        exactly the alive-mask semantics of :func:`index_bfs_distances`,
        expressed sparsely because a boolean mask over ``n!`` nodes cannot
        exist at S_13+.
    chunk_nodes : int, optional
        Frontier block size (default ``REPRO_CHUNK_NODES``); any value
        yields a bit-identical ball.

    Returns
    -------
    BoundedBall
        Sorted reached nodes, aligned exact distances, the ``truncated``
        flag and the deepest populated level.  For a graph small enough to
        sweep whole, ``max_depth >= eccentricity(origin)`` reproduces
        :func:`index_bfs_distances` restricted to its reached set, bit for
        bit (the parity tests hold the two against each other).
    """
    if max_depth < 0:
        raise InvalidParameterError(f"max_depth must be >= 0, got {max_depth!r}")
    if _np is None:
        return _bounded_bfs_ball_python(source, origin_index, max_depth, excluded)
    from repro.backend import resolve_chunk_nodes

    neighbor_source = as_neighbor_source(source)
    num_nodes = neighbor_source.num_nodes
    if not 0 <= origin_index < num_nodes:
        raise InvalidParameterError(
            f"origin index {origin_index!r} outside [0, {num_nodes})"
        )
    if excluded is None:
        excluded = _np.empty(0, dtype=_np.int64)
    else:
        excluded = _np.asarray(excluded, dtype=_np.int64)
    if _in_sorted(_np.asarray([origin_index], dtype=_np.int64), excluded)[0]:
        raise InvalidParameterError(
            f"origin index {origin_index} is excluded; balls grow from survivors"
        )
    chunk = resolve_chunk_nodes(chunk_nodes)
    with telemetry.span(
        "kernel.bounded_bfs",
        num_nodes=int(num_nodes),
        neighbor_source="table" if neighbor_source.table is not None else "implicit",
        max_depth=int(max_depth),
        excluded=int(excluded.size),
    ) as sp:
        visited = _np.asarray([origin_index], dtype=_np.int64)
        level_arrays = [visited]
        level_sizes = [1]
        frontier = visited
        truncated = False
        level = 0
        while frontier.size and level < max_depth:
            level += 1
            blocks = []
            for start in range(0, frontier.size, chunk):
                candidates = neighbor_source.neighbor_block(
                    frontier[start : start + chunk]
                ).reshape(-1)
                blocks.append(candidates[candidates >= 0])
            candidates = _np.unique(_np.concatenate(blocks))
            keep = ~_in_sorted(candidates, visited)
            if excluded.size:
                keep &= ~_in_sorted(candidates, excluded)
            frontier = candidates[keep]
            if frontier.size:
                level_arrays.append(frontier)
                level_sizes.append(int(frontier.size))
                visited = _np.sort(_np.concatenate([visited, frontier]))
            else:
                level -= 1
                break
        if level == max_depth and frontier.size:
            # The cap stopped the sweep, not the graph: expand the last
            # frontier one probe level to learn whether anything lies beyond.
            unknown = []
            for start in range(0, frontier.size, chunk):
                candidates = neighbor_source.neighbor_block(
                    frontier[start : start + chunk]
                ).reshape(-1)
                unknown.append(candidates[candidates >= 0])
            candidates = _np.unique(_np.concatenate(unknown))
            keep = ~_in_sorted(candidates, visited)
            if excluded.size:
                keep &= ~_in_sorted(candidates, excluded)
            truncated = bool(candidates[keep].size)
        nodes = _np.concatenate(level_arrays)
        distances = _np.repeat(
            _np.arange(len(level_sizes), dtype=_np.int64), level_sizes
        )
        order = _np.argsort(nodes)
        ball = BoundedBall(
            nodes=nodes[order],
            distances=distances[order],
            truncated=truncated,
            levels=level,
        )
        if telemetry.trace_enabled():
            sp.add(reached=ball.size, levels=level, truncated=truncated)
        return ball


def _bounded_bfs_ball_python(source, origin_index, max_depth, excluded):
    """Pure-Python :func:`bounded_bfs_ball` (tuple fallback, small graphs only)."""
    if isinstance(source, NeighborSource):
        def row(index):
            return source.neighbor_block([index])[0]
    else:
        def row(index):
            return source[index]
    excluded_set = set(int(x) for x in excluded) if excluded is not None else set()
    if origin_index in excluded_set:
        raise InvalidParameterError(
            f"origin index {origin_index} is excluded; balls grow from survivors"
        )
    distances = {origin_index: 0}
    frontier = [origin_index]
    level = 0
    truncated = False
    while frontier and level < max_depth:
        level += 1
        next_frontier = []
        for index in frontier:
            for neighbor in row(index):
                neighbor = int(neighbor)
                if (
                    neighbor >= 0
                    and neighbor not in distances
                    and neighbor not in excluded_set
                ):
                    distances[neighbor] = level
                    next_frontier.append(neighbor)
        frontier = next_frontier
        if not frontier:
            level -= 1
            break
    if frontier and level == max_depth:
        for index in frontier:
            for neighbor in row(index):
                neighbor = int(neighbor)
                if (
                    neighbor >= 0
                    and neighbor not in distances
                    and neighbor not in excluded_set
                ):
                    truncated = True
                    break
            if truncated:
                break
    nodes = sorted(distances)
    return BoundedBall(
        nodes=nodes,
        distances=[distances[n] for n in nodes],
        truncated=truncated,
        levels=level,
    )


def _index_sweep_from(topology: "Topology", origin_index: int, *, chunk_nodes=None):
    """Single-source BFS as a frontier sweep over the adjacency index table.

    Returns distances indexed by node index; unreachable nodes hold ``-1``.
    NumPy ``int64`` array when NumPy is available, else a list of ints.
    """
    num_nodes = topology.num_nodes
    if _np is not None:
        return index_bfs_distances(
            topology.neighbor_source(), num_nodes, origin_index,
            chunk_nodes=chunk_nodes,
        )

    table = topology.neighbor_index_table()
    distances = [-1] * num_nodes
    distances[origin_index] = 0
    queue = deque([origin_index])
    while queue:
        current = queue.popleft()
        next_level = distances[current] + 1
        for neighbor in table[current]:
            if neighbor >= 0 and distances[neighbor] < 0:
                distances[neighbor] = next_level
                queue.append(neighbor)
    return distances


def bfs_distances_from(topology: "Topology", origin, *, use_closed_form: bool = True):
    """Distances from *origin* to every node, indexed by ``node_index``.

    One whole-graph sweep over ``topology.neighbor_index_table()``: entry
    ``i`` of the result is ``distance(origin, node_from_index(i))`` and
    unreachable nodes hold ``-1``.  For the star graph the cycle-structure
    closed form (:func:`star_distances_from`) answers in one vectorised pass
    without any sweep; pass ``use_closed_form=False`` to force the BFS sweep
    (e.g. when the BFS itself is the measurement, as in the PROP-D diameter
    check).  Returns a NumPy ``int64`` array when NumPy is available, else a
    list.
    """
    origin = topology.validate_node(origin)
    if use_closed_form and _is_star(topology):
        return topology.distances_from(origin)
    return _index_sweep_from(topology, topology.node_index(origin))


def distance_matrix(topology: "Topology", *, use_closed_form: bool = True):
    """The full ``(num_nodes, num_nodes)`` distance matrix, index-ordered.

    Row ``i`` is :func:`bfs_distances_from` of ``node_from_index(i)``.  Only
    sensible for topologies whose node count squared fits in memory.
    """
    rows = [
        bfs_distances_from(
            topology, topology.node_from_index(i), use_closed_form=use_closed_form
        )
        for i in range(topology.num_nodes)
    ]
    if _np is not None:
        return _np.stack([_np.asarray(row, dtype=_np.int64) for row in rows])
    return rows


@dataclass(frozen=True)
class DistanceSummary:
    """Whole-graph metric aggregates from one distance sweep per source."""

    diameter: int
    average_distance: float
    num_nodes: int
    connected: bool


def distance_summary(topology: "Topology", *, use_closed_form: bool = True) -> DistanceSummary:
    """Diameter and average distance in a single pass over all sources.

    Each source contributes one index sweep (or one closed-form evaluation
    for the star graph); the maximum and the running sum are folded on the
    fly, so no distance matrix is materialised.
    """
    diameter = 0
    total = 0
    pairs = 0
    connected = True
    num_nodes = topology.num_nodes
    for index in range(num_nodes):
        row = bfs_distances_from(
            topology, topology.node_from_index(index), use_closed_form=use_closed_form
        )
        if _np is not None:
            row = _np.asarray(row)
            if (row < 0).any():
                connected = False
                row = row[row >= 0]
            diameter = max(diameter, int(row.max(initial=0)))
            total += int(row.sum())
            pairs += int(row.size) - 1
        else:
            reachable = [d for d in row if d >= 0]
            if len(reachable) != num_nodes:
                connected = False
            diameter = max(diameter, max(reachable, default=0))
            total += sum(reachable)
            pairs += len(reachable) - 1
    return DistanceSummary(
        diameter=diameter,
        average_distance=total / pairs if pairs > 0 else 0.0,
        num_nodes=num_nodes,
        connected=connected,
    )


def connected_under_alive_mask(topology: "Topology", alive) -> bool:
    """True if the subgraph induced by the alive nodes is connected.

    *alive* is a boolean mask indexed by ``node_index`` (NumPy array or any
    sequence of booleans).  The flood fill runs as frontier gathers over the
    adjacency index table -- no tuple sets are built.  An empty alive set is
    not connected (matching the dict reference in
    :func:`repro.topology.properties.connectivity_after_faults_reference`).
    """
    if _np is not None:
        alive_mask = _np.asarray(alive, dtype=bool)
        alive_indices = _np.flatnonzero(alive_mask)
        if alive_indices.size == 0:
            return False
        distances = index_bfs_distances(
            topology.neighbor_source(),
            topology.num_nodes,
            int(alive_indices[0]),
            alive_mask=alive_mask,
        )
        return int((distances >= 0).sum()) == int(alive_indices.size)

    table = topology.neighbor_index_table()
    alive_list = [bool(flag) for flag in alive]
    try:
        start = alive_list.index(True)
    except ValueError:
        return False
    seen = [False] * topology.num_nodes
    seen[start] = True
    reached = 1
    queue = deque([start])
    while queue:
        current = queue.popleft()
        for neighbor in table[current]:
            if neighbor >= 0 and alive_list[neighbor] and not seen[neighbor]:
                seen[neighbor] = True
                reached += 1
                queue.append(neighbor)
    return reached == sum(alive_list)

"""The star graph ``S_n`` (Akers, Harel & Krishnamurthy 1987).

``S_n`` has ``n!`` nodes, one per permutation of the symbols ``0..n-1``.  Two
permutations are adjacent when one is obtained from the other by exchanging
the symbol in tuple position 0 (the paper's leftmost symbol) with the symbol
in any other position; hence every node has degree ``n - 1``.

Key closed-form properties used by the paper (Section 2):

* diameter ``floor(3 (n - 1) / 2)``;
* the graph is vertex symmetric and maximally fault tolerant (connectivity
  equals the degree ``n - 1``);
* the distance between two permutations has a closed form in terms of the
  cycle structure of their relative permutation (implemented in
  :meth:`StarGraph.distance`, cross-checked against BFS in the tests).
"""

from __future__ import annotations

import math
from typing import Iterator, List, Sequence, Tuple

from repro.exceptions import InvalidParameterError
from repro.permutations.generators import apply_star_generator, star_neighbors
from repro.permutations.permutation import identity_permutation, is_permutation
from repro.permutations.ranking import (
    all_permutations,
    move_tables,
    permutation_rank,
    permutation_unrank,
)
from repro.topology.base import Node, Topology
from repro.topology.routing import star_distance, star_distances_from, star_route
from repro.utils.validation import check_in_range, check_positive_int

__all__ = ["StarGraph"]


class StarGraph(Topology):
    """The ``n``-star graph ``S_n`` on ``n!`` permutation nodes.

    Parameters
    ----------
    n:
        Degree parameter; the graph has ``n!`` nodes each of degree ``n - 1``.
        ``n >= 2`` is required (``S_1`` would be a single node with no edges
        and is rejected to avoid degenerate cases in the embedding layer).

    Examples
    --------
    >>> s4 = StarGraph(4)
    >>> s4.num_nodes
    24
    >>> s4.degree((3, 2, 1, 0))
    3
    >>> s4.diameter()
    4
    """

    def __init__(self, n: int):
        check_positive_int(n, "n", minimum=2)
        self._n = n

    # ------------------------------------------------------------ properties
    @property
    def n(self) -> int:
        """The degree parameter ``n`` (number of symbols)."""
        return self._n

    @property
    def num_nodes(self) -> int:
        """``n!`` nodes."""
        return math.factorial(self._n)

    @property
    def node_degree(self) -> int:
        """Every node has degree ``n - 1`` (the graph is regular)."""
        return self._n - 1

    @property
    def identity(self) -> Node:
        """The identity permutation, the conventional 'origin' node."""
        return identity_permutation(self._n)

    @property
    def paper_origin(self) -> Node:
        """The node the paper maps mesh node ``(0, ..., 0)`` to: ``(n-1, n-2, ..., 1, 0)``."""
        return tuple(range(self._n - 1, -1, -1))

    # -------------------------------------------------------------- structure
    def nodes(self) -> Iterator[Node]:
        """All permutations of ``0..n-1`` in lexicographic order."""
        return all_permutations(self._n)

    def is_node(self, node: Sequence[int]) -> bool:
        node = tuple(node)
        return len(node) == self._n and is_permutation(node)

    def neighbors(self, node: Node) -> List[Node]:
        """The ``n - 1`` nodes reachable by one generator move (g_1 .. g_{n-1})."""
        node = self.validate_node(node)
        return star_neighbors(node)

    def _adjacent(self, u: Node, v: Node) -> bool:
        """Closed form: adjacent iff the tuples differ exactly at positions 0
        and some ``j`` with the two symbols exchanged (no neighbour list)."""
        if u[0] == v[0]:
            return False
        j = 0
        for p in range(1, self._n):
            if u[p] != v[p]:
                if j:
                    return False
                j = p
        return j != 0 and u[0] == v[j] and v[0] == u[j]

    def neighbor_along(self, node: Node, j: int) -> Node:
        """Apply generator ``g_j`` (exchange tuple positions 0 and ``j``).

        This is the paper's notation ``pi^(i)`` with the paper's right-based
        dimension ``i = n - 1 - j``.
        """
        node = self.validate_node(node)
        return apply_star_generator(node, j)

    def generator_between(self, u: Node, v: Node) -> int:
        """The generator index ``j`` with ``neighbor_along(u, j) == v``.

        Adjacent nodes differ exactly at tuple positions 0 and ``j`` with the
        two symbols exchanged, so ``j`` is simply the position in *u* of *v*'s
        front symbol -- no generator applications needed.

        Raises
        ------
        InvalidParameterError
            If *u* and *v* are not adjacent.
        """
        u = self.validate_node(u)
        v = self.validate_node(v)
        if u[0] != v[0]:
            j = u.index(v[0])
            if (
                v[j] == u[0]
                and all(u[i] == v[i] for i in range(1, self._n) if i != j)
            ):
                return j
        raise InvalidParameterError(f"{u!r} and {v!r} are not adjacent in S_{self._n}")

    @property
    def num_edges(self) -> int:
        """``n! * (n - 1) / 2`` edges."""
        return math.factorial(self._n) * (self._n - 1) // 2

    # --------------------------------------------------------------- indexing
    def node_index(self, node: Node) -> int:
        """Dense id: the lexicographic rank of the permutation (Lehmer code)."""
        node = self.validate_node(node)
        return permutation_rank(node)

    def node_from_index(self, index: int) -> Node:
        """Inverse of :meth:`node_index` (lexicographic unranking)."""
        if not (0 <= index < self.num_nodes):
            raise InvalidParameterError(
                f"index must be in [0, {self.num_nodes}), got {index}"
            )
        return permutation_unrank(index, self._n)

    # ------------------------------------------------------------- fast core
    def _build_neighbor_index_table(self):
        """Closed-form adjacency index: the generator move tables as columns.

        Column ``j - 1`` of the ``(n!, n - 1)`` table is ``move_tables()[j-1]``,
        so row ``rank`` lists the neighbour ranks along ``g_1 .. g_{n-1}`` --
        exactly the order of :meth:`neighbors`.  The graph is regular, so no
        ``-1`` padding ever appears.  At the memmap-tier degrees the tables
        are column views of one on-disk array, and that shared base *is* the
        adjacency table -- no dense copy is stacked
        (:func:`repro.tables.stacked_neighbor_table`).
        """
        tables = move_tables(self._n)
        try:
            import numpy  # noqa: F401
        except ImportError:  # pragma: no cover - NumPy absent
            from array import array as _array

            return [
                _array("q", (table[rank] for table in tables))
                for rank in range(self.num_nodes)
            ]
        from repro.tables import stacked_neighbor_table

        return stacked_neighbor_table(tables)

    def move_tables(self) -> Tuple:
        """The per-degree generator move tables (cached, shared across instances).

        ``move_tables()[j - 1][rank]`` is the rank of
        ``neighbor_along(node_from_index(rank), j)``; see
        :func:`repro.permutations.ranking.move_tables`.
        """
        return move_tables(self._n)

    def neighbor_source(self):
        """Adjacency source honouring ``REPRO_NEIGHBORS``.

        ``auto`` serves the cached/memmap table through the table-tier
        degrees and the table-free implicit source (``unrank -> g_j ->
        rank``) beyond them; see
        :func:`repro.topology.routing.permutation_neighbor_source`.
        """
        from repro.permutations.ranking import star_position_generators
        from repro.topology.routing import permutation_neighbor_source

        return permutation_neighbor_source(
            star_position_generators(self._n), self._n, self.neighbor_index_table
        )

    def neighbor_ranks(self, index: int, j: int) -> int:
        """Rank of the neighbour of node *index* along generator ``g_j``."""
        check_in_range(j, "j", 1, self._n - 1)
        if not (0 <= index < self.num_nodes):
            raise InvalidParameterError(
                f"index must be in [0, {self.num_nodes}), got {index}"
            )
        return int(move_tables(self._n)[j - 1][index])

    def distances_from(self, origin: Node):
        """Distances from *origin* to every node, indexed by rank.

        One vectorised sweep of the cycle-structure closed form over all
        ``n!`` nodes; entry ``r`` equals ``distance(origin, node_from_index(r))``.
        Returns a NumPy ``int64`` array when NumPy is available, else a list.
        """
        origin = self.validate_node(origin)
        return star_distances_from(origin)

    # ------------------------------------------------------------------ metric
    def distance(self, u: Node, v: Node) -> int:
        """Shortest-path length via the cycle-structure closed form."""
        u = self.validate_node(u)
        v = self.validate_node(v)
        return star_distance(u, v)

    def shortest_path(self, u: Node, v: Node) -> List[Node]:
        """A shortest path computed by greedy cycle routing (see :func:`star_route`)."""
        u = self.validate_node(u)
        v = self.validate_node(v)
        return star_route(u, v)

    def diameter(self) -> int:
        """Closed form ``floor(3 (n - 1) / 2)`` from Akers & Krishnamurthy."""
        return (3 * (self._n - 1)) // 2

    def eccentricity(self, node: Node) -> int:
        """Every node has eccentricity equal to the diameter (vertex symmetry)."""
        self.validate_node(node)
        return self.diameter()

    # ------------------------------------------------------------------ dunder
    def __repr__(self) -> str:
        return f"StarGraph(n={self._n})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StarGraph):
            return NotImplemented
        return self._n == other._n

    def __hash__(self) -> int:
        return hash(("StarGraph", self._n))

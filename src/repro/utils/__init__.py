"""Small generic helpers shared across the :mod:`repro` package.

The helpers are intentionally dependency-free (standard library only) so that
the lowest layers of the library -- permutations and topologies -- do not pull
in numpy/networkx unless the caller actually needs array output or graph
conversion.
"""

from repro.utils.validation import (
    check_positive_int,
    check_in_range,
    check_sequence_of_ints,
    check_probability,
)
from repro.utils.mixed_radix import (
    MixedRadix,
    mixed_radix_decode,
    mixed_radix_encode,
    iter_mixed_radix,
)
from repro.utils.itertools_ext import (
    pairwise,
    chunked,
    first,
    product_of,
    argmax,
    argmin,
)

__all__ = [
    "check_positive_int",
    "check_in_range",
    "check_sequence_of_ints",
    "check_probability",
    "MixedRadix",
    "mixed_radix_decode",
    "mixed_radix_encode",
    "iter_mixed_radix",
    "pairwise",
    "chunked",
    "first",
    "product_of",
    "argmax",
    "argmin",
]

"""Tiny iterator helpers used across the package.

These mirror a few ``itertools`` recipes; they live here so the rest of the
code base can depend on a documented, tested behaviour (e.g. ``pairwise`` on
Python 3.9 where :func:`itertools.pairwise` does not exist yet).
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Tuple, TypeVar

__all__ = ["pairwise", "chunked", "first", "product_of", "argmax", "argmin"]

T = TypeVar("T")


def pairwise(iterable: Iterable[T]) -> Iterator[Tuple[T, T]]:
    """Yield consecutive overlapping pairs ``(x0, x1), (x1, x2), ...``.

    >>> list(pairwise([1, 2, 3]))
    [(1, 2), (2, 3)]
    """
    iterator = iter(iterable)
    try:
        previous = next(iterator)
    except StopIteration:
        return
    for item in iterator:
        yield previous, item
        previous = item


def chunked(iterable: Iterable[T], size: int) -> Iterator[List[T]]:
    """Yield lists of at most *size* consecutive items.

    >>> list(chunked(range(5), 2))
    [[0, 1], [2, 3], [4]]
    """
    if size < 1:
        raise ValueError("size must be >= 1")
    chunk: List[T] = []
    for item in iterable:
        chunk.append(item)
        if len(chunk) == size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


def first(iterable: Iterable[T], default: Optional[T] = None) -> Optional[T]:
    """Return the first item of *iterable*, or *default* if it is empty."""
    for item in iterable:
        return item
    return default


def product_of(values: Iterable[int]) -> int:
    """Product of an iterable of ints (1 for the empty iterable)."""
    return math.prod(values)


def argmax(values: Sequence[T], key: Optional[Callable[[T], object]] = None) -> int:
    """Index of the maximum element (first one on ties)."""
    if len(values) == 0:
        raise ValueError("argmax of an empty sequence")
    keyfn = key if key is not None else (lambda x: x)
    best_index = 0
    best_key = keyfn(values[0])
    for index in range(1, len(values)):
        candidate = keyfn(values[index])
        if candidate > best_key:  # type: ignore[operator]
            best_key = candidate
            best_index = index
    return best_index


def argmin(values: Sequence[T], key: Optional[Callable[[T], object]] = None) -> int:
    """Index of the minimum element (first one on ties)."""
    if len(values) == 0:
        raise ValueError("argmin of an empty sequence")
    keyfn = key if key is not None else (lambda x: x)
    best_index = 0
    best_key = keyfn(values[0])
    for index in range(1, len(values)):
        candidate = keyfn(values[index])
        if candidate < best_key:  # type: ignore[operator]
            best_key = candidate
            best_index = index
    return best_index

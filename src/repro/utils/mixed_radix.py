"""Mixed-radix (variable-base) integer codes.

The paper's mesh :math:`D_n` has side lengths ``2, 3, 4, ..., n`` -- a
*mixed-radix* index space whose total size is :math:`n!`.  Enumerating,
linearising and de-linearising such index spaces is needed in several places
(mesh node enumeration, uniform-mesh re-shaping in Section 4, the Appendix
factorisation), so the machinery lives here.

A mixed-radix system with radices ``(r_{m-1}, ..., r_1, r_0)`` represents the
integers ``0 .. prod(r_i) - 1`` as digit tuples ``(d_{m-1}, ..., d_0)`` with
``0 <= d_i < r_i``.  We use the *most significant digit first* convention to
match the paper's mesh coordinates ``(d_m, d_{m-1}, ..., d_1)``.
"""

from __future__ import annotations

import math
from typing import Iterator, Sequence, Tuple

from repro.exceptions import InvalidParameterError
from repro.utils.validation import check_sequence_of_ints

__all__ = [
    "MixedRadix",
    "mixed_radix_encode",
    "mixed_radix_decode",
    "iter_mixed_radix",
]


class MixedRadix:
    """A fixed mixed-radix number system.

    Parameters
    ----------
    radices:
        Digit bases, most significant first.  Every radix must be >= 1.

    Examples
    --------
    >>> mr = MixedRadix((4, 3, 2))   # the D_4 mesh of the paper, sides 4*3*2
    >>> mr.size
    24
    >>> mr.encode((3, 2, 1))
    23
    >>> mr.decode(0)
    (0, 0, 0)
    """

    __slots__ = ("_radices", "_weights", "_size")

    def __init__(self, radices: Sequence[int]):
        radices = check_sequence_of_ints(radices, "radices")
        if len(radices) == 0:
            raise InvalidParameterError("radices must not be empty")
        for r in radices:
            if r < 1:
                raise InvalidParameterError(f"every radix must be >= 1, got {r}")
        self._radices: Tuple[int, ...] = tuple(radices)
        # weight of digit i (msd first): product of radices to its right
        weights = []
        acc = 1
        for r in reversed(self._radices):
            weights.append(acc)
            acc *= r
        self._weights: Tuple[int, ...] = tuple(reversed(weights))
        self._size = acc

    @property
    def radices(self) -> Tuple[int, ...]:
        """The digit bases, most significant first."""
        return self._radices

    @property
    def weights(self) -> Tuple[int, ...]:
        """Linearisation weight of each digit (most significant first)."""
        return self._weights

    @property
    def ndigits(self) -> int:
        """Number of digits in the system."""
        return len(self._radices)

    @property
    def size(self) -> int:
        """Total number of representable values (product of the radices)."""
        return self._size

    def encode(self, digits: Sequence[int]) -> int:
        """Linearise a digit tuple into an integer in ``[0, size)``."""
        digits = check_sequence_of_ints(digits, "digits")
        if len(digits) != self.ndigits:
            raise InvalidParameterError(
                f"expected {self.ndigits} digits, got {len(digits)}"
            )
        value = 0
        for d, r, w in zip(digits, self._radices, self._weights):
            if not (0 <= d < r):
                raise InvalidParameterError(f"digit {d} out of range for radix {r}")
            value += d * w
        return value

    def decode(self, value: int) -> Tuple[int, ...]:
        """Expand an integer in ``[0, size)`` into its digit tuple."""
        if isinstance(value, bool) or not isinstance(value, int):
            raise InvalidParameterError("value must be an int")
        if not (0 <= value < self._size):
            raise InvalidParameterError(
                f"value must be in [0, {self._size}), got {value}"
            )
        digits = []
        for w, r in zip(self._weights, self._radices):
            d, value = divmod(value, w)
            digits.append(d)
        return tuple(digits)

    def __iter__(self) -> Iterator[Tuple[int, ...]]:
        """Iterate over all digit tuples in increasing linearised order."""
        return iter_mixed_radix(self._radices)

    def __len__(self) -> int:
        return self._size

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"MixedRadix(radices={self._radices})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MixedRadix):
            return NotImplemented
        return self._radices == other._radices

    def __hash__(self) -> int:
        return hash(("MixedRadix", self._radices))


def mixed_radix_encode(digits: Sequence[int], radices: Sequence[int]) -> int:
    """Functional form of :meth:`MixedRadix.encode`."""
    return MixedRadix(radices).encode(digits)


def mixed_radix_decode(value: int, radices: Sequence[int]) -> Tuple[int, ...]:
    """Functional form of :meth:`MixedRadix.decode`."""
    return MixedRadix(radices).decode(value)


def iter_mixed_radix(radices: Sequence[int]) -> Iterator[Tuple[int, ...]]:
    """Yield every digit tuple of the mixed-radix system in lexicographic order.

    Equivalent to ``itertools.product(*[range(r) for r in radices])`` but kept
    as an explicit generator so the iteration order is documented and stable.
    """
    radices = tuple(radices)
    if any(r < 1 for r in radices):
        raise InvalidParameterError("every radix must be >= 1")
    total = math.prod(radices)
    mr = MixedRadix(radices)
    for value in range(total):
        yield mr.decode(value)

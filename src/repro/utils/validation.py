"""Argument-validation helpers.

Every public constructor in the package validates its arguments eagerly and
raises :class:`repro.exceptions.InvalidParameterError` with a message that
names the offending parameter.  Centralising the checks here keeps the error
messages uniform and the call sites short.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.exceptions import InvalidParameterError

__all__ = [
    "check_positive_int",
    "check_in_range",
    "check_sequence_of_ints",
    "check_probability",
]


def check_positive_int(value: object, name: str, *, minimum: int = 1) -> int:
    """Validate that *value* is an ``int`` with ``value >= minimum``.

    Parameters
    ----------
    value:
        The object to validate.  ``bool`` is rejected even though it is an
        ``int`` subclass, because ``True`` silently meaning ``1`` is almost
        always a bug at the call sites in this package.
    name:
        Parameter name used in the error message.
    minimum:
        Smallest accepted value (inclusive).

    Returns
    -------
    int
        The validated value, unchanged.

    Raises
    ------
    InvalidParameterError
        If *value* is not an integer or is below *minimum*.
    """
    if isinstance(value, bool) or not isinstance(value, int):
        raise InvalidParameterError(f"{name} must be an int, got {type(value).__name__}")
    if value < minimum:
        raise InvalidParameterError(f"{name} must be >= {minimum}, got {value}")
    return value


def check_in_range(value: int, name: str, low: int, high: int) -> int:
    """Validate ``low <= value <= high`` (both inclusive)."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise InvalidParameterError(f"{name} must be an int, got {type(value).__name__}")
    if not (low <= value <= high):
        raise InvalidParameterError(f"{name} must be in [{low}, {high}], got {value}")
    return value


def check_sequence_of_ints(values: Iterable[object], name: str) -> tuple:
    """Validate that *values* is a finite iterable of plain ints; return a tuple."""
    try:
        seq: Sequence[object] = tuple(values)  # type: ignore[arg-type]
    except TypeError as exc:  # pragma: no cover - defensive
        raise InvalidParameterError(f"{name} must be an iterable of ints") from exc
    for item in seq:
        if isinstance(item, bool) or not isinstance(item, int):
            raise InvalidParameterError(
                f"{name} must contain only ints, found {type(item).__name__}"
            )
    return tuple(seq)  # type: ignore[return-value]


def check_probability(value: float, name: str) -> float:
    """Validate that *value* is a float-like number in ``[0, 1]``."""
    try:
        as_float = float(value)
    except (TypeError, ValueError) as exc:
        raise InvalidParameterError(f"{name} must be a number in [0, 1]") from exc
    if not (0.0 <= as_float <= 1.0):
        raise InvalidParameterError(f"{name} must be in [0, 1], got {value}")
    return as_float

"""Unit tests for broadcast, reduction and allreduce kernels on both machine types."""

import math

import pytest

from repro.algorithms.broadcast import mesh_broadcast, star_broadcast_bound, star_broadcast_greedy
from repro.algorithms.reduction import mesh_allreduce, mesh_reduce
from repro.exceptions import InvalidParameterError
from repro.simd.embedded import EmbeddedMeshMachine
from repro.simd.mesh_machine import MeshMachine
from repro.simd.star_machine import StarMachine


def make_machines(n=4):
    """A native D_n machine and an embedded one."""
    sides = tuple(range(n, 1, -1))
    return MeshMachine(sides), EmbeddedMeshMachine(n)


class TestMeshBroadcast:
    @pytest.mark.parametrize("machine_kind", ["native", "embedded"])
    def test_value_reaches_every_pe(self, machine_kind):
        native, embedded = make_machines(4)
        machine = native if machine_kind == "native" else embedded
        machine.define_register("A", {(2, 1, 1): "the value"})
        mesh_broadcast(machine, (2, 1, 1), "A")
        assert all(v == "the value" for v in machine.read_register("A_bcast").values())

    def test_route_count_is_two_sweeps_per_dimension(self):
        native, _ = make_machines(4)
        native.define_register("A", 1)
        routes = mesh_broadcast(native, (0, 0, 0), "A")
        expected = sum(2 * (side - 1) for side in (4, 3, 2))
        assert routes == expected

    def test_embedded_star_cost_within_theorem6_bound(self):
        _, embedded = make_machines(4)
        embedded.define_register("A", {(0, 0, 0): 13})
        mesh_broadcast(embedded, (0, 0, 0), "A")
        assert embedded.star_stats.unit_routes <= 3 * embedded.stats.unit_routes

    def test_custom_result_register(self):
        native, _ = make_machines(3)
        native.define_register("A", {(0, 0): 5})
        mesh_broadcast(native, (0, 0), "A", result="out")
        assert all(v == 5 for v in native.read_register("out").values())

    def test_other_pe_values_do_not_leak(self):
        native, _ = make_machines(3)
        native.define_register("A", lambda node: f"noise{node}")
        native.write_value("A", (1, 1), "signal")
        mesh_broadcast(native, (1, 1), "A")
        assert set(native.read_register("A_bcast").values()) == {"signal"}


class TestStarBroadcast:
    @pytest.mark.parametrize("n", [3, 4])
    def test_reaches_every_pe(self, n):
        machine = StarMachine(n)
        source = machine.star.paper_origin
        machine.define_register("V", {source: "hello"})
        routes = star_broadcast_greedy(machine, source, "V")
        assert all(v == "hello" for v in machine.read_register("V_bcast").values())
        assert routes == machine.stats.unit_routes

    def test_within_paper_bound(self):
        for n in (3, 4):
            machine = StarMachine(n)
            source = machine.star.identity
            machine.define_register("V", {source: 1})
            routes = star_broadcast_greedy(machine, source, "V")
            assert routes <= star_broadcast_bound(n)

    def test_at_least_log_n_factorial_routes(self):
        machine = StarMachine(4)
        source = machine.star.identity
        machine.define_register("V", {source: 1})
        routes = star_broadcast_greedy(machine, source, "V")
        assert routes >= math.ceil(math.log2(24))

    def test_requires_star_machine(self):
        native, _ = make_machines(3)
        native.define_register("V", 0)
        with pytest.raises(InvalidParameterError):
            star_broadcast_greedy(native, (0, 0), "V")

    def test_bound_rejects_small_n(self):
        with pytest.raises(InvalidParameterError):
            star_broadcast_bound(1)


class TestReduction:
    @pytest.mark.parametrize("machine_kind", ["native", "embedded"])
    def test_sum_reduction(self, machine_kind):
        native, embedded = make_machines(4)
        machine = native if machine_kind == "native" else embedded
        machine.define_register("A", lambda node: node[0] + 10 * node[1] + 100 * node[2])
        total = mesh_reduce(machine, "A", lambda a, b: a + b)
        expected = sum(node[0] + 10 * node[1] + 100 * node[2] for node in machine.mesh.nodes())
        assert total == expected

    def test_max_reduction(self):
        native, _ = make_machines(4)
        native.define_register("A", lambda node: node[0] * 7 - node[1])
        assert mesh_reduce(native, "A", max) == max(
            node[0] * 7 - node[1] for node in native.mesh.nodes()
        )

    def test_non_commutative_operator_string_concatenation(self):
        # Values are folded in coordinate order, so concatenation along a line is ordered.
        machine = MeshMachine((4,))
        machine.define_register("A", lambda node: str(node[0]))
        assert mesh_reduce(machine, "A", lambda a, b: a + b) == "0123"

    def test_result_register_holds_value_at_origin(self):
        native, _ = make_machines(3)
        native.define_register("A", 1)
        mesh_reduce(native, "A", lambda a, b: a + b, result="sum")
        assert native.read_value("sum", (0, 0)) == 6

    def test_allreduce_places_result_everywhere(self):
        native, embedded = make_machines(4)
        for machine in (native, embedded):
            machine.define_register("A", 2)
            total = mesh_allreduce(machine, "A", lambda a, b: a + b)
            assert total == 48
            assert all(v == 48 for v in machine.read_register("A_all").values())

    def test_allreduce_theorem6_ratio(self):
        _, embedded = make_machines(4)
        embedded.define_register("A", 1)
        mesh_allreduce(embedded, "A", lambda a, b: a + b)
        assert embedded.star_stats.unit_routes <= 3 * embedded.stats.unit_routes

"""Parity and property tests for the Cayley tree broadcast/reduction programs.

The program-layer contract extended to the Cayley family: the compiled
:class:`~repro.algorithms.cayley.GeneratorTreePlan` replays must be
bit-identical -- registers *and* ledgers -- to the per-call references in
:mod:`repro.algorithms.reference`, on every family (pancake, bubble-sort,
transposition trees, and the star graph itself through both machines).
"""

import operator

import pytest

from repro.algorithms import reference as _reference
from repro.algorithms.broadcast import cayley_broadcast_greedy, star_broadcast_greedy
from repro.algorithms.cayley import (
    cayley_allreduce_tree,
    cayley_broadcast_tree,
    cayley_reduce_tree,
    generator_tree_plan,
)
from repro.exceptions import InvalidParameterError
from repro.simd.cayley_machine import CayleyMachine
from repro.simd.machine import SIMDMachine
from repro.simd.star_machine import StarMachine
from repro.topology.cayley import (
    BubbleSortGraph,
    PancakeGraph,
    TranspositionCayleyGraph,
    TranspositionTreeGraph,
)
from repro.topology.hypercube import Hypercube
from repro.topology.routing import bfs_distances_from


def family_graphs():
    return [
        PancakeGraph(4),
        BubbleSortGraph(4),
        TranspositionTreeGraph.star(4),
        TranspositionTreeGraph(5, ((0, 1), (1, 2), (1, 3), (3, 4))),
    ]


def machine_pair(graph):
    fast = CayleyMachine(graph)
    slow = CayleyMachine(graph)
    init = {node: index + 1 for index, node in enumerate(fast.nodes)}
    fast.define_register("A", init)
    slow.define_register("A", init)
    return fast, slow


# ------------------------------------------------------------------ the plan
class TestGeneratorTreePlan:
    def test_plan_is_cached_per_graph_and_root(self):
        graph = PancakeGraph(4)
        assert generator_tree_plan(graph, 0) is generator_tree_plan(PancakeGraph(4), 0)
        assert generator_tree_plan(graph, 0) is not generator_tree_plan(graph, 1)

    @pytest.mark.parametrize("graph", family_graphs(), ids=repr)
    def test_phases_follow_bfs_levels(self, graph):
        plan = generator_tree_plan(graph, 0)
        distances = bfs_distances_from(graph, graph.node_from_index(0))
        covered = set()
        for phase in plan.phases:
            table = graph.move_tables()[phase.generator]
            assert len(phase.parents) == len(phase.children)
            for parent, child in zip(phase.parents, phase.children):
                assert int(distances[child]) == phase.depth
                assert int(distances[parent]) == phase.depth - 1
                assert int(table[parent]) == child
                covered.add(child)
        # Every non-root node is reached exactly once.
        assert len(covered) == graph.num_nodes - 1
        assert plan.depth == int(max(distances))
        assert plan.num_unit_routes >= plan.depth

    def test_disconnected_graph_rejected(self):
        # 4 positions split into two transposition pairs: n!/ (2 components)..
        graph = TranspositionCayleyGraph(4, ((0, 1), (2, 3)))
        with pytest.raises(InvalidParameterError):
            generator_tree_plan(graph, 0)

    def test_unsupported_topology_rejected(self):
        with pytest.raises(InvalidParameterError):
            generator_tree_plan(Hypercube(3), 0)


# ------------------------------------------------------------ ledger parity
@pytest.mark.parametrize("graph", family_graphs(), ids=repr)
class TestTreeParity:
    def test_broadcast_registers_and_ledgers_match_reference(self, graph):
        fast, slow = machine_pair(graph)
        source = graph.node_from_index(graph.num_nodes // 2)
        fast_routes = cayley_broadcast_tree(fast, source, "A")
        slow_routes = _reference.cayley_broadcast_tree(slow, source, "A")
        assert fast_routes == slow_routes
        assert fast.register_values("A_bcast") == slow.register_values("A_bcast")
        assert fast.stats.snapshot() == slow.stats.snapshot()
        # Everyone is informed with the source's value.
        expected = fast.read_value("A", source)
        assert all(value == expected for value in fast.register_values("A_bcast"))

    def test_reduce_registers_and_ledgers_match_reference(self, graph):
        fast, slow = machine_pair(graph)
        root = graph.node_from_index(3)
        fast_value = cayley_reduce_tree(fast, "A", operator.add, root_node=root)
        slow_value = _reference.cayley_reduce_tree(
            slow, "A", operator.add, root_node=root
        )
        assert fast_value == slow_value == sum(range(1, graph.num_nodes + 1))
        assert fast.register_values("A_red") == slow.register_values("A_red")
        assert fast.stats.snapshot() == slow.stats.snapshot()

    def test_reduce_with_non_commutative_operator_matches(self, graph):
        # Deterministic phase order: fast and reference must fold in the same
        # order even when the operator does not commute.
        fast, slow = machine_pair(graph)
        concat = lambda a, b: f"{a},{b}"  # noqa: E731
        fast_value = cayley_reduce_tree(fast, "A", concat)
        slow_value = _reference.cayley_reduce_tree(slow, "A", concat)
        assert fast_value == slow_value
        assert fast.stats.snapshot() == slow.stats.snapshot()

    def test_allreduce_matches_reference(self, graph):
        fast, slow = machine_pair(graph)
        fast_value = cayley_allreduce_tree(fast, "A", operator.add)
        slow_value = _reference.cayley_allreduce_tree(slow, "A", operator.add)
        assert fast_value == slow_value
        assert fast.register_values("A_all") == slow.register_values("A_all")
        assert all(
            value == fast_value for value in fast.register_values("A_all")
        )
        assert fast.stats.snapshot() == slow.stats.snapshot()


class TestStarMachineRunsTheSameProgram:
    """'Unchanged on every family' includes the paper's own machine."""

    def test_broadcast_on_star_machine(self):
        star = StarMachine(4)
        star.define_register("A", {node: node[0] for node in star.nodes})
        routes = cayley_broadcast_tree(star, star.star.paper_origin, "A")
        expected = star.star.paper_origin[0]
        assert all(value == expected for value in star.register_values("A_bcast"))
        assert routes == star.stats.unit_routes
        assert star.stats.by_label == {"broadcast-tree": routes}

    def test_reduce_on_star_machine_matches_cayley_machine(self):
        star = StarMachine(4)
        cayley = CayleyMachine(TranspositionTreeGraph.star(4))
        init = {node: index for index, node in enumerate(star.nodes)}
        star.define_register("A", init)
        cayley.define_register("A", init)
        assert cayley_reduce_tree(star, "A", operator.add) == cayley_reduce_tree(
            cayley, "A", operator.add
        )
        assert star.stats.snapshot() == cayley.stats.snapshot()

    def test_unsupported_machine_falls_back_to_reference(self):
        cube = SIMDMachine(Hypercube(3))
        cube.define_register("A", {node: sum(node) for node in cube.nodes})
        routes = cayley_broadcast_tree(cube, (0, 0, 0), "A")
        assert routes > 0
        assert all(value == 0 for value in cube.register_values("A_bcast"))
        total = cayley_reduce_tree(cube, "A", operator.add)
        assert total == sum(sum(node) for node in cube.nodes)


# ------------------------------------------------------------ greedy SIMD-B
class TestGreedyBroadcastGeneralisation:
    def test_star_entry_point_delegates_unchanged(self):
        direct = StarMachine(4)
        generic = StarMachine(4)
        init = {node: node[0] for node in direct.nodes}
        direct.define_register("A", init)
        generic.define_register("A", init)
        source = direct.star.identity
        assert star_broadcast_greedy(direct, source, "A") == cayley_broadcast_greedy(
            generic, source, "A"
        )
        assert direct.register_values("A_bcast") == generic.register_values("A_bcast")
        assert direct.stats.snapshot() == generic.stats.snapshot()

    def test_star_entry_point_still_requires_star_machine(self):
        machine = CayleyMachine(PancakeGraph(3))
        machine.define_register("A", 1)
        with pytest.raises(InvalidParameterError):
            star_broadcast_greedy(machine, (0, 1, 2), "A")

    @pytest.mark.parametrize(
        "graph", [PancakeGraph(4), BubbleSortGraph(4)], ids=repr
    )
    def test_greedy_informs_everyone_on_cayley_machines(self, graph):
        machine = CayleyMachine(graph)
        machine.define_register("A", {node: node[0] for node in machine.nodes})
        source = graph.node_from_index(7)
        routes = cayley_broadcast_greedy(machine, source, "A")
        expected = machine.read_value("A", source)
        assert all(value == expected for value in machine.register_values("A_bcast"))
        # Cannot inform faster than doubling allows, nor slower than one
        # neighbour per PE per route allows.
        assert routes >= plan_lower_bound(graph)

    def test_greedy_works_on_plain_hypercube_machine(self):
        machine = SIMDMachine(Hypercube(3))
        machine.define_register("A", {node: sum(node) for node in machine.nodes})
        routes = cayley_broadcast_greedy(machine, (1, 1, 1), "A")
        assert routes >= 3  # at least the diameter... of the far corner
        assert all(value == 3 for value in machine.register_values("A_bcast"))

    def test_greedy_stalls_on_disconnected_topology(self):
        graph = TranspositionCayleyGraph(4, ((0, 1), (2, 3)))
        machine = CayleyMachine(graph)
        machine.define_register("A", 1)
        with pytest.raises(InvalidParameterError):
            cayley_broadcast_greedy(machine, (0, 1, 2, 3), "A")


def plan_lower_bound(graph) -> int:
    """Broadcast needs at least the BFS depth of the farthest node."""
    distances = bfs_distances_from(graph, graph.node_from_index(7))
    return int(max(int(d) for d in distances))

"""Parity: compiled route programs vs the per-call reference implementations.

Every public algorithm kernel compiles to a :class:`RouteProgram` on
:class:`MeshMachine` / :class:`EmbeddedMeshMachine`; the retained per-call
implementations (:mod:`repro.algorithms.reference`) are the behaviour oracle.
For each (algorithm, machine, degree) pair the two paths must produce

* bit-identical registers,
* bit-identical ledgers -- for the embedded machine both the mesh-level and
  the star-level :class:`RouteStatistics` snapshots, including labels.

Degrees 6..8 cover the ISSUE-2 acceptance band; the full-shearsort parity at
n = 8 takes minutes in the reference implementation and is gated behind
``REPRO_HEAVY_TESTS=1`` (a single round runs in tier-1 instead).
"""

import os
import random

import pytest

from repro.algorithms import (
    mesh_allreduce,
    mesh_broadcast,
    mesh_reduce,
    odd_even_transposition_sort,
    prefix_sum_dimension,
    rotate_dimension,
    segmented_totals,
    shearsort_2d,
    shift_dimension,
    snake_order_rank,
)
from repro.algorithms import reference
from repro.embedding.uniform import factorise_paper_mesh
from repro.simd.embedded import EmbeddedMeshMachine
from repro.simd.mesh_machine import MeshMachine
from repro.topology.mesh import paper_mesh

HEAVY = bool(os.environ.get("REPRO_HEAVY_TESTS"))

DEGREES = [6, 7, 8]


def native_machine(n):
    return MeshMachine(paper_mesh(n).sides)


def embedded_machine(n):
    return EmbeddedMeshMachine(n)


MACHINES = [("native", native_machine), ("embedded", embedded_machine)]


def machine_pair(factory, n, register="K", seed=0, payload="int"):
    fast, slow = factory(n), factory(n)
    rng = random.Random(seed * 1000 + n)
    if payload == "int":
        data = {node: rng.randint(0, 10**6) for node in fast.mesh.nodes()}
    else:  # comparable non-numeric payload forcing the object engine
        data = {node: f"{rng.randint(0, 10**6):07d}" for node in fast.mesh.nodes()}
    fast.define_register(register, dict(data))
    slow.define_register(register, dict(data))
    return fast, slow


def assert_parity(fast, slow, registers):
    __tracebackhide__ = True
    for name in registers:
        assert fast.read_register(name) == slow.read_register(name), name
    assert fast.stats.snapshot() == slow.stats.snapshot()
    if hasattr(fast, "star_stats"):
        assert fast.star_stats.snapshot() == slow.star_stats.snapshot()


# -------------------------------------------------------------------- sorting
class TestSortParity:
    @pytest.mark.parametrize("n", DEGREES)
    @pytest.mark.parametrize("kind,factory", MACHINES)
    def test_line_sort(self, kind, factory, n):
        fast, slow = machine_pair(factory, n, seed=1)
        fast_routes = odd_even_transposition_sort(fast, "K", dim=0)
        slow_routes = reference.odd_even_transposition_sort(slow, "K", dim=0)
        assert fast_routes == slow_routes
        assert_parity(fast, slow, ["K"])

    @pytest.mark.parametrize("n", [6])
    @pytest.mark.parametrize("kind,factory", MACHINES)
    def test_line_sort_object_engine(self, kind, factory, n):
        # String keys are comparable but not numeric: the object engine runs.
        fast, slow = machine_pair(factory, n, seed=2, payload="str")
        odd_even_transposition_sort(fast, "K", dim=1)
        reference.odd_even_transposition_sort(slow, "K", dim=1)
        assert_parity(fast, slow, ["K"])

    @pytest.mark.parametrize("n", [6])
    def test_snake_masked_sort(self, n):
        # The shearsort row phase: spec-masked ascending lines (compiled)
        # vs the predicate form (reference).
        fast, slow = machine_pair(native_machine, n, seed=3)
        odd_even_transposition_sort(fast, "K", dim=1, ascending_mask=("parity", 0, 0))
        reference.odd_even_transposition_sort(
            slow, "K", dim=1, ascending_mask=lambda node: node[0] % 2 == 0
        )
        assert_parity(fast, slow, ["K"])

    def test_opaque_predicate_falls_back_to_reference(self):
        # A closure cannot key a program cache; both paths must still agree.
        fast, slow = machine_pair(native_machine, 5, seed=4)
        predicate = lambda node: node[0] == 0  # noqa: E731
        odd_even_transposition_sort(fast, "K", dim=1, ascending_mask=predicate)
        reference.odd_even_transposition_sort(slow, "K", dim=1, ascending_mask=predicate)
        assert_parity(fast, slow, ["K"])


class TestShearsortParity:
    @pytest.mark.parametrize("n", [6, 7] + ([8] if HEAVY else []))
    def test_one_round(self, n):
        sides = factorise_paper_mesh(n, 2)
        fast, slow = MeshMachine(sides), MeshMachine(sides)
        rng = random.Random(n)
        data = {node: rng.randint(0, 10**6) for node in fast.mesh.nodes()}
        fast.define_register("K", dict(data))
        slow.define_register("K", dict(data))
        fast_routes = shearsort_2d(fast, "K", rounds=1)
        slow_routes = reference.shearsort_2d(slow, "K", rounds=1)
        assert fast_routes == slow_routes
        assert_parity(fast, slow, ["K"])

    @pytest.mark.parametrize("n", [6] + ([7, 8] if HEAVY else []))
    def test_full_sort(self, n):
        sides = factorise_paper_mesh(n, 2)
        fast, slow = MeshMachine(sides), MeshMachine(sides)
        rng = random.Random(100 + n)
        data = {node: rng.randint(0, 10**6) for node in fast.mesh.nodes()}
        fast.define_register("K", dict(data))
        slow.define_register("K", dict(data))
        fast_routes = shearsort_2d(fast, "K")
        slow_routes = reference.shearsort_2d(slow, "K")
        assert fast_routes == slow_routes
        assert_parity(fast, slow, ["K"])
        # And the result really is snake-sorted.
        values = fast.read_register("K")
        ordered = [
            values[node]
            for node in sorted(
                fast.mesh.nodes(), key=lambda nd: snake_order_rank(nd, sides)
            )
        ]
        assert ordered == sorted(data.values())


# ------------------------------------------------------------- shift / rotate
class TestShiftRotateParity:
    @pytest.mark.parametrize("n", DEGREES)
    @pytest.mark.parametrize("kind,factory", MACHINES)
    def test_rotation(self, kind, factory, n):
        fast, slow = machine_pair(factory, n, seed=5)
        fast_routes = rotate_dimension(fast, "K", dim=0, steps=2)
        slow_routes = reference.rotate_dimension(slow, "K", dim=0, steps=2)
        assert fast_routes == slow_routes
        assert_parity(fast, slow, ["K", "K_rot", "_wrap", "_rot_in"])

    @pytest.mark.parametrize("n", [6, 7])
    @pytest.mark.parametrize("kind,factory", MACHINES)
    def test_rotation_short_dimension(self, kind, factory, n):
        # The last dimension has side 2: a one-hop carry chain.
        fast, slow = machine_pair(factory, n, seed=6)
        dim = len(fast.mesh.sides) - 1
        rotate_dimension(fast, "K", dim=dim, steps=1)
        reference.rotate_dimension(slow, "K", dim=dim, steps=1)
        assert_parity(fast, slow, ["K", "K_rot", "_wrap", "_rot_in"])

    @pytest.mark.parametrize("n", DEGREES)
    @pytest.mark.parametrize("kind,factory", MACHINES)
    @pytest.mark.parametrize("delta,steps", [(+1, 1), (-1, 3), (+1, 0)])
    def test_shift(self, kind, factory, n, delta, steps):
        fast, slow = machine_pair(factory, n, seed=7)
        fast_routes = shift_dimension(fast, "K", dim=0, delta=delta, steps=steps, fill=-1)
        slow_routes = reference.shift_dimension(
            slow, "K", dim=0, delta=delta, steps=steps, fill=-1
        )
        assert fast_routes == slow_routes == steps
        registers = ["K", "K_shift"] + (["_shift_in"] if steps else [])
        assert_parity(fast, slow, registers)

    @pytest.mark.parametrize("kind,factory", MACHINES)
    def test_shift_non_numeric_fill(self, kind, factory):
        fast, slow = machine_pair(factory, 5, seed=8)
        shift_dimension(fast, "K", dim=1, delta=+1, steps=2, fill=None)
        reference.shift_dimension(slow, "K", dim=1, delta=+1, steps=2, fill=None)
        assert_parity(fast, slow, ["K", "K_shift", "_shift_in"])


# --------------------------------------------------------------------- scans
class TestScanParity:
    @pytest.mark.parametrize("n", DEGREES)
    @pytest.mark.parametrize("kind,factory", MACHINES)
    def test_prefix_sum(self, kind, factory, n):
        fast, slow = machine_pair(factory, n, seed=9)
        op = lambda a, b: a + b  # noqa: E731
        fast_routes = prefix_sum_dimension(fast, "K", op, dim=0)
        slow_routes = reference.prefix_sum_dimension(slow, "K", op, dim=0)
        assert fast_routes == slow_routes == fast.mesh.sides[0] - 1
        assert_parity(fast, slow, ["K", "K_scan"])

    @pytest.mark.parametrize("n", [6])
    @pytest.mark.parametrize("kind,factory", MACHINES)
    def test_prefix_sum_non_commutative(self, kind, factory, n):
        fast, slow = machine_pair(factory, n, seed=10, payload="str")
        op = lambda a, b: a + b  # noqa: E731  (string concatenation)
        prefix_sum_dimension(fast, "K", op, dim=1)
        reference.prefix_sum_dimension(slow, "K", op, dim=1)
        assert_parity(fast, slow, ["K", "K_scan"])

    @pytest.mark.parametrize("n", [6, 7])
    @pytest.mark.parametrize("kind,factory", MACHINES)
    def test_segmented_totals(self, kind, factory, n):
        fast, slow = machine_pair(factory, n, seed=11)
        op = lambda a, b: a + b  # noqa: E731
        fast_routes = segmented_totals(fast, "K", op, dim=1)
        slow_routes = reference.segmented_totals(slow, "K", op, dim=1)
        assert fast_routes == slow_routes
        assert_parity(fast, slow, ["K", "K_total"])


# ----------------------------------------------------------------- broadcast
class TestBroadcastParity:
    @pytest.mark.parametrize(
        "kind,factory,n",
        [("native", native_machine, n) for n in DEGREES]
        + [("embedded", embedded_machine, n) for n in ([6, 7, 8] if HEAVY else [6, 7])],
    )
    def test_mesh_broadcast(self, kind, factory, n):
        fast, slow = machine_pair(factory, n, seed=12)
        source = tuple([1] * fast.mesh.ndim)
        fast_routes = mesh_broadcast(fast, source, "K")
        slow_routes = reference.mesh_broadcast(slow, source, "K")
        assert fast_routes == slow_routes
        assert_parity(fast, slow, ["K", "K_bcast"])
        payload = fast.read_value("K", source)
        assert all(v == payload for v in fast.read_register("K_bcast").values())


# ---------------------------------------------------------------- reductions
class TestReductionParity:
    @pytest.mark.parametrize("n", [5, 6])
    @pytest.mark.parametrize("kind,factory", MACHINES)
    def test_mesh_reduce(self, kind, factory, n):
        fast, slow = machine_pair(factory, n, seed=13)
        op = lambda a, b: a + b  # noqa: E731
        fast_value = mesh_reduce(fast, "K", op)
        slow_value = reference.mesh_reduce(slow, "K", op)
        assert fast_value == slow_value
        assert_parity(fast, slow, ["K", "K_red"])

    @pytest.mark.parametrize("n", [5])
    @pytest.mark.parametrize("kind,factory", MACHINES)
    def test_mesh_allreduce(self, kind, factory, n):
        fast, slow = machine_pair(factory, n, seed=14)
        op = lambda a, b: a + b  # noqa: E731
        fast_value = mesh_allreduce(fast, "K", op)
        slow_value = reference.mesh_allreduce(slow, "K", op)
        assert fast_value == slow_value
        assert_parity(fast, slow, ["K", "K_all"])
        assert all(v == fast_value for v in fast.read_register("K_all").values())


# --------------------------------------------------- native vs embedded data
class TestCrossMachineParity:
    """The same compiled program on both backends moves the same data."""

    @pytest.mark.parametrize("n", [6, 7])
    def test_sort_registers_match(self, n):
        native, _ = machine_pair(native_machine, n, seed=15)
        embedded, _ = machine_pair(embedded_machine, n, seed=15)
        odd_even_transposition_sort(native, "K", dim=0)
        odd_even_transposition_sort(embedded, "K", dim=0)
        assert native.read_register("K") == embedded.read_register("K")
        assert embedded.star_stats.unit_routes <= 3 * embedded.stats.unit_routes

    @pytest.mark.parametrize("n", [6])
    def test_rotate_registers_match(self, n):
        native, _ = machine_pair(native_machine, n, seed=16)
        embedded, _ = machine_pair(embedded_machine, n, seed=16)
        rotate_dimension(native, "K", dim=0, steps=1)
        rotate_dimension(embedded, "K", dim=0, steps=1)
        assert native.read_register("K_rot") == embedded.read_register("K_rot")
        # Mesh-level route/message counters agree between the backends.
        native_snapshot = native.stats.snapshot()
        embedded_snapshot = embedded.stats.snapshot()
        for key in ("unit_routes", "messages", "local_operations"):
            assert native_snapshot[key] == embedded_snapshot[key]

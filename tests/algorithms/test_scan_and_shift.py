"""Unit tests for prefix sums, segmented totals, shifts and rotations."""

import pytest

from repro.algorithms.scan import prefix_sum_dimension, segmented_totals
from repro.algorithms.shift import rotate_dimension, shift_dimension
from repro.exceptions import InvalidParameterError
from repro.simd.embedded import EmbeddedMeshMachine
from repro.simd.mesh_machine import MeshMachine


class TestPrefixSum:
    def test_scan_along_a_line(self):
        machine = MeshMachine((5,))
        machine.define_register("A", lambda node: node[0] + 1)
        routes = prefix_sum_dimension(machine, "A", lambda a, b: a + b, dim=0)
        values = machine.read_register("A_scan")
        assert [values[(i,)] for i in range(5)] == [1, 3, 6, 10, 15]
        assert routes == 4

    def test_scan_runs_every_line_in_parallel(self):
        machine = MeshMachine((3, 4))
        machine.define_register("A", lambda node: node[1] + 1)
        prefix_sum_dimension(machine, "A", lambda a, b: a + b, dim=1)
        values = machine.read_register("A_scan")
        for row in range(3):
            assert [values[(row, col)] for col in range(4)] == [1, 3, 6, 10]

    def test_scan_with_non_commutative_operator(self):
        machine = MeshMachine((4,))
        machine.define_register("A", lambda node: str(node[0]))
        prefix_sum_dimension(machine, "A", lambda a, b: a + b, dim=0)
        assert machine.read_value("A_scan", (3,)) == "0123"

    def test_scan_on_embedded_machine_matches_native(self):
        native = MeshMachine((4, 3, 2))
        embedded = EmbeddedMeshMachine(4)
        for machine in (native, embedded):
            machine.define_register("A", lambda node: node[0] * 2 + 1)
            prefix_sum_dimension(machine, "A", lambda a, b: a + b, dim=0)
        assert native.read_register("A_scan") == embedded.read_register("A_scan")
        assert embedded.star_stats.unit_routes <= 3 * embedded.stats.unit_routes

    def test_custom_result_name(self):
        machine = MeshMachine((3,))
        machine.define_register("A", 1)
        prefix_sum_dimension(machine, "A", lambda a, b: a + b, dim=0, result="prefix")
        assert machine.read_value("prefix", (2,)) == 3


class TestSegmentedTotals:
    def test_every_pe_gets_line_total(self):
        machine = MeshMachine((2, 4))
        machine.define_register("A", lambda node: node[1] + 1)
        routes = segmented_totals(machine, "A", lambda a, b: a + b, dim=1)
        values = machine.read_register("A_total")
        assert all(value == 10 for value in values.values())
        assert routes == 2 * 3

    def test_totals_differ_between_lines(self):
        machine = MeshMachine((3, 3))
        machine.define_register("A", lambda node: node[0] * 10)
        segmented_totals(machine, "A", lambda a, b: a + b, dim=1)
        values = machine.read_register("A_total")
        assert values[(0, 0)] == 0 and values[(1, 2)] == 30 and values[(2, 1)] == 60


class TestShift:
    def test_shift_by_one(self):
        machine = MeshMachine((4,))
        machine.define_register("A", lambda node: node[0])
        shift_dimension(machine, "A", dim=0, delta=+1, steps=1, fill=-1)
        values = machine.read_register("A_shift")
        assert [values[(i,)] for i in range(4)] == [-1, 0, 1, 2]

    def test_shift_by_two_negative_direction(self):
        machine = MeshMachine((5,))
        machine.define_register("A", lambda node: node[0])
        shift_dimension(machine, "A", dim=0, delta=-1, steps=2, fill=None)
        values = machine.read_register("A_shift")
        assert [values[(i,)] for i in range(5)] == [2, 3, 4, None, None]

    def test_shift_zero_steps_is_copy(self):
        machine = MeshMachine((3,))
        machine.define_register("A", lambda node: node[0])
        routes = shift_dimension(machine, "A", dim=0, delta=+1, steps=0)
        assert routes == 0
        assert machine.read_register("A_shift") == machine.read_register("A")

    def test_shift_on_multidimensional_mesh(self):
        machine = MeshMachine((2, 3))
        machine.define_register("A", lambda node: node)
        shift_dimension(machine, "A", dim=1, delta=+1, steps=1, fill="edge")
        values = machine.read_register("A_shift")
        assert values[(0, 0)] == "edge"
        assert values[(1, 2)] == (1, 1)

    def test_rejects_bad_arguments(self):
        machine = MeshMachine((3,))
        machine.define_register("A", 0)
        with pytest.raises(InvalidParameterError):
            shift_dimension(machine, "A", dim=0, delta=+1, steps=-1)
        with pytest.raises(InvalidParameterError):
            shift_dimension(machine, "A", dim=0, delta=3, steps=1)

    def test_shift_on_embedded_machine(self):
        embedded = EmbeddedMeshMachine(4)
        embedded.define_register("A", lambda node: node[0])
        shift_dimension(embedded, "A", dim=0, delta=+1, steps=1, fill=0)
        values = embedded.read_register("A_shift")
        assert values[(0, 1, 1)] == 0 and values[(3, 0, 0)] == 2


class TestRotate:
    def test_single_rotation(self):
        machine = MeshMachine((4,))
        machine.define_register("A", lambda node: node[0])
        rotate_dimension(machine, "A", dim=0, steps=1)
        values = machine.read_register("A_rot")
        assert [values[(i,)] for i in range(4)] == [3, 0, 1, 2]

    def test_full_cycle_of_rotations_restores_data(self):
        machine = MeshMachine((3,))
        machine.define_register("A", lambda node: node[0] * 11)
        rotate_dimension(machine, "A", dim=0, steps=3)
        values = machine.read_register("A_rot")
        assert [values[(i,)] for i in range(3)] == [0, 11, 22]

    def test_rotation_along_one_dimension_of_a_grid(self):
        machine = MeshMachine((2, 3))
        machine.define_register("A", lambda node: node[1])
        rotate_dimension(machine, "A", dim=1, steps=1)
        values = machine.read_register("A_rot")
        for row in range(2):
            assert [values[(row, col)] for col in range(3)] == [2, 0, 1]

    def test_rejects_negative_steps(self):
        machine = MeshMachine((3,))
        machine.define_register("A", 0)
        with pytest.raises(InvalidParameterError):
            rotate_dimension(machine, "A", dim=0, steps=-1)

"""Unit tests for the sorting kernels (odd-even transposition sort, shearsort)."""

import random

import pytest

from repro.algorithms.sorting import (
    odd_even_transposition_sort,
    shearsort_2d,
    snake_order_rank,
    sort_lines,
)
from repro.exceptions import InvalidParameterError
from repro.simd.embedded import EmbeddedMeshMachine
from repro.simd.mesh_machine import MeshMachine


def fill_random(machine, register, seed, high=1000):
    rng = random.Random(seed)
    data = {node: rng.randint(0, high) for node in machine.mesh.nodes()}
    machine.define_register(register, data)
    return data


class TestSnakeOrderRank:
    def test_even_rows_left_to_right(self):
        assert snake_order_rank((0, 0), (3, 4)) == 0
        assert snake_order_rank((0, 3), (3, 4)) == 3

    def test_odd_rows_right_to_left(self):
        assert snake_order_rank((1, 3), (3, 4)) == 4
        assert snake_order_rank((1, 0), (3, 4)) == 7

    def test_rank_is_a_bijection(self):
        sides = (4, 5)
        ranks = {snake_order_rank((r, c), sides) for r in range(4) for c in range(5)}
        assert ranks == set(range(20))

    def test_rejects_non_2d(self):
        with pytest.raises(InvalidParameterError):
            snake_order_rank((0, 0, 0), (2, 2, 2))

    def test_rejects_out_of_range(self):
        with pytest.raises(InvalidParameterError):
            snake_order_rank((3, 0), (3, 4))


class TestOddEvenTranspositionSort:
    def test_sorts_a_line(self):
        machine = MeshMachine((8,))
        data = fill_random(machine, "K", seed=1)
        odd_even_transposition_sort(machine, "K", dim=0)
        values = machine.read_register("K")
        assert [values[(i,)] for i in range(8)] == sorted(data.values())

    def test_sorts_every_line_of_a_grid_in_parallel(self):
        machine = MeshMachine((3, 6))
        data = fill_random(machine, "K", seed=2)
        sort_lines(machine, "K", dim=1)
        values = machine.read_register("K")
        for row in range(3):
            line = [values[(row, col)] for col in range(6)]
            assert line == sorted(data[(row, col)] for col in range(6))

    def test_descending_lines_with_mask(self):
        machine = MeshMachine((2, 5))
        data = fill_random(machine, "K", seed=3)
        odd_even_transposition_sort(machine, "K", dim=1, ascending_mask=lambda node: node[0] == 0)
        values = machine.read_register("K")
        ascending = [values[(0, col)] for col in range(5)]
        descending = [values[(1, col)] for col in range(5)]
        assert ascending == sorted(ascending)
        assert descending == sorted(descending, reverse=True)

    def test_route_count_is_two_per_phase(self):
        machine = MeshMachine((6,))
        fill_random(machine, "K", seed=4)
        routes = odd_even_transposition_sort(machine, "K", dim=0)
        assert routes == 2 * 6

    def test_already_sorted_input_is_stable(self):
        machine = MeshMachine((5,))
        machine.define_register("K", lambda node: node[0])
        odd_even_transposition_sort(machine, "K", dim=0)
        values = machine.read_register("K")
        assert [values[(i,)] for i in range(5)] == [0, 1, 2, 3, 4]

    def test_duplicates_are_preserved(self):
        machine = MeshMachine((6,))
        machine.define_register("K", {(i,): v for i, v in enumerate([3, 1, 3, 0, 1, 3])})
        odd_even_transposition_sort(machine, "K", dim=0)
        values = machine.read_register("K")
        assert [values[(i,)] for i in range(6)] == [0, 1, 1, 3, 3, 3]

    def test_on_embedded_machine_matches_native(self):
        native = MeshMachine((4, 3, 2))
        embedded = EmbeddedMeshMachine(4)
        rng = random.Random(5)
        data = {node: rng.randint(0, 99) for node in native.mesh.nodes()}
        for machine in (native, embedded):
            machine.define_register("K", dict(data))
            odd_even_transposition_sort(machine, "K", dim=0)
        assert native.read_register("K") == embedded.read_register("K")
        assert embedded.star_stats.unit_routes <= 3 * embedded.stats.unit_routes


class TestShearsort:
    @pytest.mark.parametrize("sides", [(4, 4), (4, 6), (3, 5), (8, 3)])
    def test_sorts_into_snake_order(self, sides):
        machine = MeshMachine(sides)
        data = fill_random(machine, "K", seed=sum(sides))
        shearsort_2d(machine, "K")
        values = machine.read_register("K")
        ordered = [
            values[node]
            for node in sorted(machine.mesh.nodes(), key=lambda nd: snake_order_rank(nd, sides))
        ]
        assert ordered == sorted(data.values())

    def test_single_row_mesh(self):
        machine = MeshMachine((1, 7))
        data = fill_random(machine, "K", seed=11)
        shearsort_2d(machine, "K")
        values = machine.read_register("K")
        assert [values[(0, c)] for c in range(7)] == sorted(data.values())

    def test_rejects_non_2d_mesh(self):
        machine = MeshMachine((2, 2, 2))
        machine.define_register("K", 0)
        with pytest.raises(InvalidParameterError):
            shearsort_2d(machine, "K")

    def test_route_count_reported(self):
        machine = MeshMachine((4, 4))
        fill_random(machine, "K", seed=12)
        routes = shearsort_2d(machine, "K")
        assert routes == machine.stats.unit_routes
        assert routes > 0

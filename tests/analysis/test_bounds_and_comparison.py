"""Unit tests for repro.analysis.bounds and repro.analysis.comparison."""

import math

import pytest

from repro.analysis.bounds import (
    broadcast_bound,
    dilation_lower_bound_exists,
    hypercube_diameter,
    hypercube_num_nodes,
    mesh_diameter,
    paper_mesh_max_degree,
    star_degree,
    star_diameter,
    star_num_edges,
    star_num_nodes,
)
from repro.analysis.comparison import closest_hypercube_for_star, star_vs_hypercube_table
from repro.exceptions import InvalidParameterError
from repro.topology.hypercube import Hypercube
from repro.topology.mesh import paper_mesh
from repro.topology.star import StarGraph


class TestBoundsAgainstEnumeration:
    @pytest.mark.parametrize("n", [2, 3, 4, 5])
    def test_star_counts_match_topology(self, n):
        star = StarGraph(n)
        assert star_num_nodes(n) == star.num_nodes
        assert star_num_edges(n) == star.num_edges
        assert star_degree(n) == star.node_degree
        assert star_diameter(n) == star.diameter()

    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_hypercube_counts_match_topology(self, n):
        cube = Hypercube(n)
        assert hypercube_num_nodes(n) == cube.num_nodes
        assert hypercube_diameter(n) == cube.diameter()

    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_mesh_bounds_match_topology(self, n):
        mesh = paper_mesh(n)
        assert mesh_diameter(mesh.sides) == mesh.diameter()
        assert paper_mesh_max_degree(n) == mesh.max_degree()
        assert paper_mesh_max_degree(n) == max(
            len(mesh.neighbors(node)) for node in mesh.nodes()
        )

    def test_paper_mesh_max_degree_n2(self):
        assert paper_mesh_max_degree(2) == 1

    def test_lemma1_threshold(self):
        assert dilation_lower_bound_exists(2)
        assert not dilation_lower_bound_exists(3)
        assert not dilation_lower_bound_exists(10)

    def test_broadcast_bound_positive_and_growing(self):
        assert broadcast_bound(2) >= 0
        assert broadcast_bound(8) > broadcast_bound(4) > broadcast_bound(3)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            star_diameter(1)
        with pytest.raises(InvalidParameterError):
            broadcast_bound(1)
        with pytest.raises(InvalidParameterError):
            star_num_nodes(0)


class TestComparison:
    def test_table_shape(self):
        rows = star_vs_hypercube_table(6)
        assert [row.degree for row in rows] == [2, 3, 4, 5, 6]

    def test_star_always_connects_more_nodes(self):
        for row in star_vs_hypercube_table(10):
            assert row.star_nodes > row.hypercube_nodes
            assert row.node_ratio > 1

    def test_known_row(self):
        row = next(r for r in star_vs_hypercube_table(4) if r.degree == 3)
        assert row.star_n == 4
        assert row.star_nodes == 24
        assert row.star_diameter == 4
        assert row.hypercube_nodes == 8
        assert row.hypercube_diameter == 3

    def test_diameter_grows_slower_than_hypercube_at_equal_size(self):
        # At comparable node counts the star graph's diameter is smaller:
        # S_7 has 5040 nodes and diameter 9; a hypercube needs 13 dimensions
        # (8192 nodes) and has diameter 13.
        n = 7
        cube_dim = closest_hypercube_for_star(n)
        assert cube_dim == math.ceil(math.log2(math.factorial(n)))
        assert star_diameter(n) < hypercube_diameter(cube_dim)

    def test_rejects_small_max_degree(self):
        with pytest.raises(InvalidParameterError):
            star_vs_hypercube_table(1)

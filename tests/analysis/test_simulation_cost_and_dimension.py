"""Unit tests for repro.analysis.simulation_cost and repro.analysis.optimal_dimension."""

import math

import pytest

from repro.analysis.optimal_dimension import (
    appendix_cost,
    appendix_side_lengths,
    optimal_dimension_table,
)
from repro.analysis.simulation_cost import sorting_cost_estimates, uniform_simulation_table
from repro.embedding.uniform import factorise_paper_mesh, optimal_simulation_dimension
from repro.exceptions import InvalidParameterError


class TestUniformSimulationTable:
    def test_rows_match_requested_degrees(self):
        rows = uniform_simulation_table([3, 5, 7])
        assert [row.n for row in rows] == [3, 5, 7]
        assert rows[1].num_processors == 120

    def test_relationships_between_columns(self):
        for row in uniform_simulation_table([4, 6, 8]):
            assert row.theorem8_slowdown == pytest.approx(
                row.theorem7_slowdown * 2 ** (row.n - 1)
            )
            assert row.on_star_slowdown == pytest.approx(3 * row.theorem8_slowdown)

    def test_slowdown_grows_with_n(self):
        rows = uniform_simulation_table([4, 6, 8, 10])
        slowdowns = [row.theorem8_slowdown for row in rows]
        assert slowdowns == sorted(slowdowns)

    def test_rejects_bad_degree(self):
        with pytest.raises(InvalidParameterError):
            uniform_simulation_table([1])


class TestSortingEstimates:
    def test_keys_present(self):
        estimates = sorting_cost_estimates(6)
        assert set(estimates) == {
            "uniform_full_dimension",
            "appendix_optimal",
            "appendix_optimal_dimension",
            "shearsort_2d",
        }

    def test_optimal_dimension_beats_full_dimension_for_large_n(self):
        for n in (7, 8, 9, 10):
            estimates = sorting_cost_estimates(n)
            assert estimates["appendix_optimal"] <= estimates["uniform_full_dimension"]

    def test_optimal_dimension_matches_embedding_module(self):
        for n in (5, 8):
            assert sorting_cost_estimates(n)["appendix_optimal_dimension"] == float(
                optimal_simulation_dimension(n)
            )

    def test_rejects_small_n(self):
        with pytest.raises(InvalidParameterError):
            sorting_cost_estimates(2)


class TestAppendixAnalysis:
    def test_side_lengths_alias(self):
        assert appendix_side_lengths(7, 3) == factorise_paper_mesh(7, 3)

    def test_cost_positive_and_dimension_dependent(self):
        costs = {d: appendix_cost(8, d) for d in range(1, 8)}
        assert all(cost > 0 for cost in costs.values())
        # d = 1 (a single line of 40320 nodes) must be far worse than the best d.
        assert costs[1] > min(costs.values()) * 10

    def test_cost_rejects_bad_dimension(self):
        with pytest.raises(InvalidParameterError):
            appendix_cost(6, 0)
        with pytest.raises(InvalidParameterError):
            appendix_cost(6, 6)

    def test_table_rows_and_argmin(self):
        table = optimal_dimension_table(8)
        assert [row.d for row in table] == list(range(1, 8))
        best = min(table, key=lambda row: row.cost)
        # The argmin agrees with the closed-form helper's cost model up to the
        # different (side-length-aware) constant: both should be far from d = 1.
        assert best.d > 1
        for row in table:
            assert math.prod(row.side_lengths) == math.factorial(8)
            assert row.max_side == max(row.side_lengths)

    def test_analytic_optimum_order_of_magnitude(self):
        # sqrt(log2(10!)) / 2 is about 2.3; the measured argmin for n = 10 should be close.
        table = optimal_dimension_table(10)
        best = min(table, key=lambda row: row.cost)
        analytic = 0.5 * math.sqrt(math.log2(math.factorial(10)))
        assert abs(best.d - analytic) <= 2.5

"""Shared fixtures for the test-suite.

Small topology/embedding instances are expensive enough to be worth sharing
(the S_5 embedding touches 120 nodes and ~300 edge paths), so they are
session-scoped; nothing in the suite mutates them.
"""

from __future__ import annotations

import pytest

from repro.embedding.mesh_to_star import MeshToStarEmbedding
from repro.topology.hypercube import Hypercube
from repro.topology.mesh import Mesh, paper_mesh
from repro.topology.star import StarGraph


@pytest.fixture(scope="session")
def star4() -> StarGraph:
    """The 24-node star graph S_4 (the paper's Figure 2)."""
    return StarGraph(4)


@pytest.fixture(scope="session")
def star5() -> StarGraph:
    """The 120-node star graph S_5."""
    return StarGraph(5)


@pytest.fixture(scope="session")
def mesh_d4() -> Mesh:
    """The 2*3*4 mesh D_4 (the paper's Figure 3)."""
    return paper_mesh(4)


@pytest.fixture(scope="session")
def mesh_d5() -> Mesh:
    """The 2*3*4*5 mesh D_5."""
    return paper_mesh(5)


@pytest.fixture(scope="session")
def cube3() -> Hypercube:
    """The 8-node hypercube Q_3."""
    return Hypercube(3)


@pytest.fixture(scope="session")
def embedding4() -> MeshToStarEmbedding:
    """The paper's embedding for n = 4."""
    return MeshToStarEmbedding(4)


@pytest.fixture(scope="session")
def embedding5() -> MeshToStarEmbedding:
    """The paper's embedding for n = 5."""
    return MeshToStarEmbedding(5)

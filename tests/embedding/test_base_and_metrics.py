"""Unit tests for the generic Embedding container and the embedding metrics."""

import pytest

from repro.exceptions import DilationViolationError, EmbeddingError
from repro.embedding.base import Embedding
from repro.embedding.metrics import (
    average_dilation,
    congestion,
    dilation,
    expansion,
    measure_embedding,
    verify_embedding,
)
from repro.topology.hypercube import Hypercube
from repro.topology.mesh import Mesh


@pytest.fixture
def line_in_cube():
    """A 1-D mesh of 4 nodes embedded into Q_2 along a Gray-code cycle."""
    guest = Mesh((4,))
    host = Hypercube(2)
    vertex_map = {(0,): (0, 0), (1,): (1, 0), (2,): (1, 1), (3,): (0, 1)}
    return Embedding(guest, host, vertex_map, name="line-in-cube")


class TestEmbeddingContainer:
    def test_map_node_and_call(self, line_in_cube):
        assert line_in_cube.map_node((2,)) == (1, 1)
        assert line_in_cube((0,)) == (0, 0)

    def test_vertex_images_and_image_set(self, line_in_cube):
        images = line_in_cube.vertex_images()
        assert len(images) == 4
        assert line_in_cube.image_set() == {(0, 0), (1, 0), (1, 1), (0, 1)}

    def test_map_edge_defaults_to_shortest_path(self, line_in_cube):
        path = line_in_cube.map_edge((0,), (1,))
        assert path == [(0, 0), (1, 0)]

    def test_map_edge_rejects_non_edges(self, line_in_cube):
        with pytest.raises(EmbeddingError):
            line_in_cube.map_edge((0,), (2,))

    def test_rejects_host_smaller_than_guest(self):
        with pytest.raises(EmbeddingError):
            Embedding(Mesh((5,)), Hypercube(2), {})

    def test_lazy_callable_vertex_map(self):
        guest = Mesh((4,))
        host = Hypercube(2)
        gray = [(0, 0), (1, 0), (1, 1), (0, 1)]
        embedding = Embedding(guest, host, lambda node: gray[node[0]])
        assert embedding.map_node((3,)) == (0, 1)
        embedding.validate()

    def test_incomplete_mapping_detected(self):
        guest = Mesh((3,))
        host = Hypercube(2)
        embedding = Embedding(guest, host, {(0,): (0, 0), (1,): (1, 0)})
        with pytest.raises(EmbeddingError, match="does not cover"):
            embedding.map_node((2,))

    def test_non_injective_mapping_detected(self):
        guest = Mesh((3,))
        host = Hypercube(2)
        embedding = Embedding(
            guest, host, {(0,): (0, 0), (1,): (1, 0), (2,): (0, 0)}
        )
        with pytest.raises(EmbeddingError, match="not injective"):
            embedding.validate()

    def test_bad_edge_path_detected(self):
        guest = Mesh((2,))
        host = Hypercube(2)
        embedding = Embedding(
            guest,
            host,
            {(0,): (0, 0), (1,): (1, 1)},
            edge_path=lambda u, v: [(0, 0), (1, 1)],  # not a host edge
        )
        with pytest.raises(EmbeddingError, match="non-edge"):
            embedding.map_edge((0,), (1,))

    def test_path_with_wrong_endpoints_detected(self):
        guest = Mesh((2,))
        host = Hypercube(2)
        embedding = Embedding(
            guest,
            host,
            {(0,): (0, 0), (1,): (1, 0)},
            edge_path=lambda u, v: [(0, 0), (0, 1)],
        )
        with pytest.raises(EmbeddingError, match="does not connect"):
            embedding.map_edge((0,), (1,))

    def test_non_simple_path_detected(self):
        guest = Mesh((2,))
        host = Hypercube(2)
        embedding = Embedding(
            guest,
            host,
            {(0,): (0, 0), (1,): (1, 0)},
            edge_path=lambda u, v: [(0, 0), (1, 0), (0, 0), (1, 0)],
        )
        with pytest.raises(EmbeddingError, match="not simple"):
            embedding.map_edge((0,), (1,))


class TestMetrics:
    def test_expansion(self, line_in_cube):
        assert expansion(line_in_cube) == 1.0

    def test_dilation_of_gray_line_is_one(self, line_in_cube):
        assert dilation(line_in_cube) == 1
        assert average_dilation(line_in_cube) == 1.0

    def test_congestion_of_gray_line(self, line_in_cube):
        assert congestion(line_in_cube) == 1

    def test_measure_embedding_consistency(self, line_in_cube):
        metrics = measure_embedding(line_in_cube)
        assert metrics.guest_nodes == 4
        assert metrics.host_nodes == 4
        assert metrics.guest_edges == 3
        assert metrics.dilation == dilation(line_in_cube)
        assert metrics.congestion == congestion(line_in_cube)
        assert metrics.max_load == 1
        assert metrics.edge_length_histogram == {1: 3}
        assert metrics.as_dict()["expansion"] == 1.0

    def test_verify_embedding_dilation_bound_violation(self):
        guest = Mesh((2,))
        host = Hypercube(2)
        embedding = Embedding(guest, host, {(0,): (0, 0), (1,): (1, 1)})
        with pytest.raises(DilationViolationError):
            verify_embedding(embedding, max_dilation=1)
        assert verify_embedding(embedding, max_dilation=2)

    def test_expansion_greater_than_one(self):
        guest = Mesh((3,))
        host = Hypercube(2)
        embedding = Embedding(guest, host, {(0,): (0, 0), (1,): (1, 0), (2,): (1, 1)})
        metrics = measure_embedding(embedding)
        assert metrics.expansion == pytest.approx(4 / 3)


class TestBatchedMeasurementParity:
    """PR-3 facade contract: the move-table batched kernel (mesh-to-star) and
    the bincount generic path must match the per-path Counter reference."""

    @pytest.mark.parametrize("n", [2, 3, 4, 5, 6])
    def test_mesh_to_star_fast_kernel_matches_reference(self, n):
        from repro.embedding.mesh_to_star import MeshToStarEmbedding
        from repro.embedding.metrics import measure_embedding_reference

        fast = measure_embedding(MeshToStarEmbedding(n))
        reference = measure_embedding_reference(MeshToStarEmbedding(n))
        assert fast == reference

    def test_generic_bincount_path_matches_reference(self, line_in_cube):
        from repro.embedding.metrics import measure_embedding_reference

        assert measure_embedding(line_in_cube) == measure_embedding_reference(line_in_cube)

    def test_hypercube_embedding_matches_reference(self):
        from repro.embedding.mesh_to_hypercube import MeshToHypercubeEmbedding
        from repro.embedding.metrics import measure_embedding_reference
        from repro.topology.mesh import paper_mesh

        embedding = MeshToHypercubeEmbedding(paper_mesh(4))
        reference = measure_embedding_reference(MeshToHypercubeEmbedding(paper_mesh(4)))
        assert measure_embedding(embedding) == reference

    def test_rank_vertex_map_matches_map_node(self):
        from repro.embedding.mesh_to_star import MeshToStarEmbedding
        from repro.permutations.ranking import permutation_rank

        embedding = MeshToStarEmbedding(4)
        ranks = embedding.rank_vertex_map()
        for index, coords in enumerate(embedding.guest.nodes()):
            assert int(ranks[index]) == permutation_rank(embedding.map_node(coords))

    def test_fast_verifier_rejects_corrupted_vertex_map(self):
        numpy = pytest.importorskip("numpy")
        from repro.embedding.mesh_to_star import MeshToStarEmbedding

        embedding = MeshToStarEmbedding(4)
        ranks = numpy.array(embedding.rank_vertex_map()).copy()
        ranks[1] = ranks[0]  # duplicate image: not injective
        embedding._cached_rank_vertex_map = ranks
        with pytest.raises(EmbeddingError):
            verify_embedding(embedding)

    def test_fast_verifier_rejects_out_of_range_ranks(self):
        numpy = pytest.importorskip("numpy")
        from repro.embedding.mesh_to_star import MeshToStarEmbedding

        embedding = MeshToStarEmbedding(4)
        ranks = numpy.array(embedding.rank_vertex_map()).copy()
        ranks[1] = embedding.star.num_nodes  # image outside the host graph
        embedding._cached_rank_vertex_map = ranks
        with pytest.raises(EmbeddingError):
            verify_embedding(embedding)

    def test_fast_verifier_rejects_disconnected_paths(self):
        numpy = pytest.importorskip("numpy")
        from repro.embedding.mesh_to_star import MeshToStarEmbedding

        embedding = MeshToStarEmbedding(4)
        ranks = numpy.array(embedding.rank_vertex_map()).copy()
        # Swap two images: still injective, but the canonical paths no longer
        # connect the right endpoints.
        ranks[0], ranks[5] = ranks[5], ranks[0]
        embedding._cached_rank_vertex_map = ranks
        with pytest.raises(EmbeddingError):
            verify_embedding(embedding)

"""Unit tests for the conversion procedures CONVERT-D-S / CONVERT-S-D (Figures 5 & 6)."""

import math

import pytest

from repro.exceptions import InvalidParameterError
from repro.embedding.mesh_to_star import convert_d_s, convert_s_d, exchange_sequence
from repro.topology.mesh import paper_mesh


class TestExchangeSequence:
    def test_table1_rows(self):
        assert exchange_sequence(1, 1) == [(0, 1)]
        assert exchange_sequence(2, 2) == [(1, 2), (0, 1)]
        assert exchange_sequence(3, 3) == [(2, 3), (1, 2), (0, 1)]

    def test_prefix_semantics(self):
        # Coordinate d_i uses the first d_i exchanges of the full row.
        assert exchange_sequence(3, 1) == [(2, 3)]
        assert exchange_sequence(3, 0) == []

    def test_rejects_out_of_range_coordinate(self):
        with pytest.raises(InvalidParameterError):
            exchange_sequence(3, 4)
        with pytest.raises(InvalidParameterError):
            exchange_sequence(3, -1)

    def test_rejects_bad_dimension(self):
        with pytest.raises(InvalidParameterError):
            exchange_sequence(0, 0)


class TestConvertDS:
    def test_origin_maps_to_paper_origin(self):
        for n in range(2, 7):
            assert convert_d_s(tuple(0 for _ in range(n - 1)), n) == tuple(range(n - 1, -1, -1))

    def test_paper_worked_example(self):
        # Section 3.2: node (3, 0, 1) maps to (0 3 1 2).
        assert convert_d_s((3, 0, 1), 4) == (0, 3, 1, 2)

    def test_single_coordinate_steps(self):
        assert convert_d_s((0, 0, 1), 4) == (3, 2, 0, 1)
        assert convert_d_s((0, 1, 0), 4) == (3, 1, 2, 0)
        assert convert_d_s((1, 0, 0), 4) == (2, 3, 1, 0)

    def test_largest_coordinate_gives_sorted_permutation(self):
        # Mesh node (n-1, n-2, ..., 1) maps to the identity arrangement (0 1 ... n-1)
        # in the n = 4 table (last row of Figure 7).
        assert convert_d_s((3, 2, 1), 4) == (0, 1, 2, 3)

    def test_output_is_always_a_permutation(self):
        n = 5
        for coords in paper_mesh(n).nodes():
            result = convert_d_s(coords, n)
            assert sorted(result) == list(range(n))

    def test_injective(self):
        n = 6
        images = {convert_d_s(coords, n) for coords in paper_mesh(n).nodes()}
        assert len(images) == math.factorial(n)

    def test_rejects_wrong_length(self):
        with pytest.raises(InvalidParameterError):
            convert_d_s((0, 0), 4)

    def test_rejects_out_of_range_coordinate(self):
        with pytest.raises(InvalidParameterError):
            convert_d_s((4, 0, 0), 4)
        with pytest.raises(InvalidParameterError):
            convert_d_s((0, 0, 2), 4)

    def test_rejects_bad_degree(self):
        with pytest.raises(InvalidParameterError):
            convert_d_s((), 1)


class TestConvertSD:
    def test_paper_worked_example(self):
        # Section 3.2: node (0 2 1 3) maps back to (3, 1, 1).
        assert convert_s_d((0, 2, 1, 3)) == (3, 1, 1)

    def test_paper_origin_maps_to_mesh_origin(self):
        assert convert_s_d((3, 2, 1, 0)) == (0, 0, 0)
        assert convert_s_d((4, 3, 2, 1, 0)) == (0, 0, 0, 0)

    def test_explicit_n_must_match(self):
        with pytest.raises(InvalidParameterError):
            convert_s_d((0, 1, 2), 4)

    def test_rejects_non_permutation(self):
        with pytest.raises(InvalidParameterError):
            convert_s_d((0, 0, 1, 2))

    def test_output_in_mesh_range(self):
        n = 5
        mesh = paper_mesh(n)
        from repro.permutations.ranking import all_permutations

        for perm in all_permutations(n):
            assert mesh.is_node(convert_s_d(perm, n))


class TestRoundTrip:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 6])
    def test_convert_s_d_inverts_convert_d_s(self, n):
        for coords in paper_mesh(n).nodes():
            assert convert_s_d(convert_d_s(coords, n), n) == coords

    @pytest.mark.parametrize("n", [2, 3, 4, 5])
    def test_convert_d_s_inverts_convert_s_d(self, n):
        from repro.permutations.ranking import all_permutations

        for perm in all_permutations(n):
            assert convert_d_s(convert_s_d(perm, n), n) == perm

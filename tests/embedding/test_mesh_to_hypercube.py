"""Unit tests for the Gray-code mesh-to-hypercube baseline embedding."""

import pytest

from repro.exceptions import InvalidParameterError
from repro.embedding.mesh_to_hypercube import (
    MeshToHypercubeEmbedding,
    gray_code,
    gray_code_rank,
)
from repro.embedding.metrics import measure_embedding
from repro.topology.mesh import Mesh, paper_mesh


class TestGrayCode:
    def test_first_values(self):
        assert [gray_code(i) for i in range(8)] == [0, 1, 3, 2, 6, 7, 5, 4]

    def test_consecutive_codes_differ_in_one_bit(self):
        for i in range(255):
            assert bin(gray_code(i) ^ gray_code(i + 1)).count("1") == 1

    def test_rank_inverts_code(self):
        for i in range(256):
            assert gray_code_rank(gray_code(i)) == i

    def test_rejects_negative(self):
        with pytest.raises(InvalidParameterError):
            gray_code(-1)
        with pytest.raises(InvalidParameterError):
            gray_code_rank(-1)


class TestMeshToHypercubeEmbedding:
    def test_bits_per_dimension(self):
        embedding = MeshToHypercubeEmbedding(Mesh((4, 3, 2)))
        assert embedding.bits_per_dimension == (2, 2, 1)
        assert embedding.host.n == 5

    def test_power_of_two_mesh_has_expansion_one(self):
        embedding = MeshToHypercubeEmbedding(Mesh((4, 2)))
        metrics = measure_embedding(embedding)
        assert metrics.expansion == 1.0
        assert metrics.dilation == 1

    def test_paper_mesh_dilation_one_expansion_above_one(self):
        embedding = MeshToHypercubeEmbedding(paper_mesh(4))
        metrics = measure_embedding(embedding)
        assert metrics.dilation == 1
        assert metrics.expansion == pytest.approx(32 / 24)

    def test_vertex_map_is_injective(self):
        embedding = MeshToHypercubeEmbedding(paper_mesh(4))
        images = set(embedding.vertex_images().values())
        assert len(images) == 24

    def test_inverse(self):
        embedding = MeshToHypercubeEmbedding(paper_mesh(4))
        for coords in embedding.guest.nodes():
            assert embedding.inverse(embedding.map_node(coords)) == coords

    def test_inverse_rejects_unused_host_node(self):
        embedding = MeshToHypercubeEmbedding(Mesh((3,)))
        # Code for value 3 -> (0,1) reversed... the unused host node is the one whose
        # Gray rank is 3, i.e. bits (0, 1) -> code 2 -> rank 3.
        used = set(embedding.vertex_images().values())
        unused = [node for node in embedding.host.nodes() if node not in used]
        assert len(unused) == 1
        with pytest.raises(InvalidParameterError):
            embedding.inverse(unused[0])

    def test_validates(self):
        MeshToHypercubeEmbedding(paper_mesh(4)).validate()

    def test_rejects_non_mesh_guest(self):
        with pytest.raises(InvalidParameterError):
            MeshToHypercubeEmbedding("not a mesh")

    def test_degenerate_sides_of_length_one(self):
        embedding = MeshToHypercubeEmbedding(Mesh((1, 4)))
        assert embedding.bits_per_dimension == (0, 2)
        metrics = measure_embedding(embedding)
        assert metrics.dilation == 1

"""Unit tests for the MeshToStarEmbedding object and Lemma 3."""

import pytest

from repro.exceptions import InvalidNodeError, InvalidParameterError
from repro.embedding.mesh_to_star import (
    MeshToStarEmbedding,
    convert_d_s,
    mesh_neighbor_transposition,
)
from repro.embedding.metrics import measure_embedding, verify_embedding
from repro.experiments.figures.figure7_mapping_table import PAPER_FIGURE7
from repro.permutations.permutation import swap_symbols


class TestLemma3:
    def test_paper_example(self):
        # pi = (2 3 4 0 1) corresponds to mesh node (2, 1, 0, 1); the paper gives
        # pi_{3+} = (2 1 4 0 3) and pi_{3-} = (2 4 3 0 1).
        coords = (2, 1, 0, 1)
        assert convert_d_s(coords, 5) == (2, 3, 4, 0, 1)
        a, b = mesh_neighbor_transposition(coords, 5, dimension=3, delta=+1)
        assert swap_symbols((2, 3, 4, 0, 1), a, b) == (2, 1, 4, 0, 3)
        a, b = mesh_neighbor_transposition(coords, 5, dimension=3, delta=-1)
        assert swap_symbols((2, 3, 4, 0, 1), a, b) == (2, 4, 3, 0, 1)

    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_transposition_reproduces_convert_d_s_of_neighbour(self, n):
        from repro.topology.mesh import paper_mesh

        mesh = paper_mesh(n)
        for coords in mesh.nodes():
            perm = convert_d_s(coords, n)
            for dimension in range(1, n):
                index = n - 1 - dimension
                for delta in (+1, -1):
                    new_value = coords[index] + delta
                    if not (0 <= new_value <= dimension):
                        continue
                    neighbor = list(coords)
                    neighbor[index] = new_value
                    expected = convert_d_s(tuple(neighbor), n)
                    a, b = mesh_neighbor_transposition(coords, n, dimension, delta)
                    assert swap_symbols(perm, a, b) == expected

    def test_rejects_step_off_the_mesh(self):
        with pytest.raises(InvalidParameterError):
            mesh_neighbor_transposition((0, 0, 0), 4, dimension=1, delta=-1)
        with pytest.raises(InvalidParameterError):
            mesh_neighbor_transposition((3, 0, 0), 4, dimension=3, delta=+1)

    def test_rejects_bad_delta_and_dimension(self):
        with pytest.raises(InvalidParameterError):
            mesh_neighbor_transposition((0, 0, 0), 4, dimension=1, delta=2)
        with pytest.raises(InvalidParameterError):
            mesh_neighbor_transposition((0, 0, 0), 4, dimension=4, delta=1)


class TestEmbeddingObject:
    def test_guest_and_host_sizes_match(self, embedding4):
        assert embedding4.guest.num_nodes == embedding4.host.num_nodes == 24
        assert embedding4.n == 4
        assert embedding4.mesh.sides == (4, 3, 2)
        assert embedding4.star.n == 4

    def test_map_node_matches_figure7(self, embedding4):
        for coords, expected in PAPER_FIGURE7.items():
            assert embedding4.map_node(coords) == expected
            assert embedding4(coords) == expected

    def test_inverse(self, embedding4):
        for coords in embedding4.guest.nodes():
            assert embedding4.inverse(embedding4.map_node(coords)) == coords

    def test_inverse_rejects_foreign_node(self, embedding4):
        with pytest.raises(InvalidNodeError):
            embedding4.inverse((0, 1, 2))

    def test_mapping_table_is_complete_bijection(self, embedding4):
        table = embedding4.mapping_table()
        assert len(table) == 24
        assert len(set(table.values())) == 24

    def test_rejects_degree_below_two(self):
        with pytest.raises(InvalidParameterError):
            MeshToStarEmbedding(1)

    def test_edge_transposition_symbols_occur_in_image(self, embedding4):
        for u, v in embedding4.guest.edges():
            a, b = embedding4.edge_transposition(u, v)
            image = embedding4.map_node(u)
            assert a in image and b in image
            assert swap_symbols(image, a, b) == embedding4.map_node(v)

    def test_edge_transposition_rejects_non_edges(self, embedding4):
        with pytest.raises(InvalidNodeError):
            embedding4.edge_transposition((0, 0, 0), (2, 0, 0))
        with pytest.raises(InvalidNodeError):
            embedding4.edge_transposition((0, 0, 0), (1, 1, 0))


class TestTheorem4Metrics:
    @pytest.mark.parametrize("n,expected_dilation", [(2, 1), (3, 3), (4, 3), (5, 3)])
    def test_dilation(self, n, expected_dilation):
        metrics = measure_embedding(MeshToStarEmbedding(n))
        assert metrics.dilation == expected_dilation

    def test_expansion_is_one(self, embedding4, embedding5):
        assert measure_embedding(embedding4).expansion == 1.0
        assert measure_embedding(embedding5).expansion == 1.0

    def test_no_dilation_two_edges(self, embedding5):
        histogram = measure_embedding(embedding5).edge_length_histogram
        assert set(histogram) <= {1, 3}

    def test_dilation_one_edges_are_exactly_dimension_n_minus_1(self, embedding4):
        # Lemma 3: only the longest dimension exchanges the front symbol.
        for u, v in embedding4.guest.edges():
            path = embedding4.map_edge(u, v)
            differs_in = [i for i in range(3) if u[i] != v[i]][0]
            if differs_in == 0:  # tuple dim 0 = paper dimension n-1
                assert len(path) - 1 == 1
            else:
                assert len(path) - 1 == 3

    def test_verify_embedding_passes_with_bound_three(self, embedding4):
        assert verify_embedding(embedding4, max_dilation=3)

    def test_shortest_path_dilation_matches_assigned(self, embedding4):
        metrics = measure_embedding(embedding4)
        assert metrics.shortest_path_dilation == metrics.dilation == 3

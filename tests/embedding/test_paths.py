"""Unit tests for repro.embedding.paths (Lemma 2 paths and unit-route path sets)."""

import pytest

from repro.exceptions import InvalidParameterError
from repro.embedding.paths import mesh_edge_path, transposition_path, unit_route_paths
from repro.simd.conflicts import check_unit_route_conflicts, paths_to_steps


class TestTranspositionPath:
    def test_includes_start_node(self):
        path = transposition_path((3, 2, 1, 0), 3, 0)
        assert path[0] == (3, 2, 1, 0)
        assert path[-1] == (0, 2, 1, 3)

    def test_length_one_when_symbol_at_front(self):
        assert len(transposition_path((3, 2, 1, 0), 3, 1)) - 1 == 1

    def test_length_three_otherwise(self):
        path = transposition_path((3, 2, 1, 0), 2, 0)
        assert len(path) - 1 == 3
        assert path[-1] == (3, 0, 1, 2)

    def test_intermediate_nodes_match_lemma2_proof(self):
        # pi = (k ... i ... j ...): path passes through (i ... k ... j ...) then (j ... k ... i ...).
        path = transposition_path((3, 2, 1, 0), 2, 1)
        assert path[1][0] == 2 and path[2][0] == 1


class TestMeshEdgePath:
    def test_endpoints_are_the_mapped_images(self, embedding4):
        for u, v in embedding4.guest.edges():
            path = mesh_edge_path(embedding4, u, v)
            assert path[0] == embedding4.map_node(u)
            assert path[-1] == embedding4.map_node(v)

    def test_paths_are_star_walks(self, embedding4):
        for u, v in list(embedding4.guest.edges())[:20]:
            path = mesh_edge_path(embedding4, u, v)
            for a, b in zip(path, path[1:]):
                assert embedding4.host.has_edge(a, b)

    def test_reverse_edge_gives_reverse_endpoints(self, embedding4):
        u, v = (0, 0, 0), (1, 0, 0)
        forward = mesh_edge_path(embedding4, u, v)
        backward = mesh_edge_path(embedding4, v, u)
        assert forward[0] == backward[-1] and forward[-1] == backward[0]


class TestUnitRoutePaths:
    def test_participation_counts(self, embedding4):
        # Dimension 3 (length 4): nodes with coordinate < 3 can move +1: 3*3*2 = 18 sources.
        paths = unit_route_paths(embedding4, dimension=3, delta=+1)
        assert len(paths) == 18
        # Dimension 1 (length 2): only coordinate 0 can move +1: 12 sources.
        assert len(unit_route_paths(embedding4, dimension=1, delta=+1)) == 12

    def test_all_paths_same_length_within_a_route(self, embedding4):
        for dimension in range(1, 4):
            for delta in (+1, -1):
                lengths = {len(p) - 1 for p in unit_route_paths(embedding4, dimension, delta).values()}
                assert len(lengths) == 1
                assert lengths <= {1, 3}

    def test_dimension_n_minus_1_is_single_hop(self, embedding5):
        lengths = {len(p) - 1 for p in unit_route_paths(embedding5, 4, +1).values()}
        assert lengths == {1}

    def test_lemma5_no_conflicts(self, embedding5):
        for dimension in range(1, 5):
            for delta in (+1, -1):
                paths = unit_route_paths(embedding5, dimension, delta)
                for step in paths_to_steps(paths.values()):
                    check_unit_route_conflicts(step)  # raises on violation

    def test_rejects_bad_arguments(self, embedding4):
        with pytest.raises(InvalidParameterError):
            unit_route_paths(embedding4, dimension=0, delta=+1)
        with pytest.raises(InvalidParameterError):
            unit_route_paths(embedding4, dimension=4, delta=+1)
        with pytest.raises(InvalidParameterError):
            unit_route_paths(embedding4, dimension=1, delta=0)

"""Unit tests for the Appendix reshape embedding (dilation-1 reshaping of D_n)."""

import math

import pytest

from repro.exceptions import InvalidParameterError
from repro.embedding.metrics import measure_embedding
from repro.embedding.reshape import (
    PaperMeshReshapeEmbedding,
    mixed_radix_gray_decode,
    mixed_radix_gray_encode,
)


class TestMixedRadixGray:
    def test_binary_case_matches_classic_gray_order(self):
        assert [mixed_radix_gray_encode(v, (2, 2)) for v in range(4)] == [
            (0, 0),
            (0, 1),
            (1, 1),
            (1, 0),
        ]

    @pytest.mark.parametrize("radices", [(3,), (2, 3), (3, 3), (4, 3, 2), (2, 5, 3)])
    def test_consecutive_codes_differ_by_one_step_in_one_digit(self, radices):
        total = math.prod(radices)
        codes = [mixed_radix_gray_encode(v, radices) for v in range(total)]
        for a, b in zip(codes, codes[1:]):
            diffs = [(x, y) for x, y in zip(a, b) if x != y]
            assert len(diffs) == 1
            assert abs(diffs[0][0] - diffs[0][1]) == 1

    @pytest.mark.parametrize("radices", [(3,), (4, 3, 2), (2, 2, 2, 2), (5, 4)])
    def test_encode_is_a_bijection_and_decode_inverts_it(self, radices):
        total = math.prod(radices)
        codes = {mixed_radix_gray_encode(v, radices) for v in range(total)}
        assert len(codes) == total
        for v in range(total):
            assert mixed_radix_gray_decode(mixed_radix_gray_encode(v, radices), radices) == v

    def test_digits_stay_in_range(self):
        radices = (4, 3, 2)
        for v in range(24):
            code = mixed_radix_gray_encode(v, radices)
            assert all(0 <= g < r for g, r in zip(code, radices))

    def test_rejects_bad_arguments(self):
        with pytest.raises(InvalidParameterError):
            mixed_radix_gray_encode(24, (4, 3, 2))
        with pytest.raises(InvalidParameterError):
            mixed_radix_gray_encode(-1, (4, 3, 2))
        with pytest.raises(InvalidParameterError):
            mixed_radix_gray_encode(0, ())
        with pytest.raises(InvalidParameterError):
            mixed_radix_gray_decode((0, 0), (4, 3, 2))
        with pytest.raises(InvalidParameterError):
            mixed_radix_gray_decode((4, 0, 0), (4, 3, 2))


class TestPaperMeshReshapeEmbedding:
    def test_guest_and_host_shapes(self):
        embedding = PaperMeshReshapeEmbedding(5, 2)
        assert embedding.guest.sides == (15, 8)
        assert embedding.host.sides == (5, 4, 3, 2)
        assert embedding.guest.num_nodes == embedding.host.num_nodes == 120

    def test_groups_partition_the_host_dimensions(self):
        embedding = PaperMeshReshapeEmbedding(7, 3)
        flattened = sorted(i for group in embedding.groups for i in group)
        assert flattened == list(range(6))

    @pytest.mark.parametrize("n,d", [(4, 2), (5, 2), (5, 3), (6, 2), (6, 4)])
    def test_vertex_map_is_a_bijection(self, n, d):
        embedding = PaperMeshReshapeEmbedding(n, d)
        images = set(embedding.vertex_images().values())
        assert len(images) == math.factorial(n)

    @pytest.mark.parametrize("n,d", [(4, 2), (5, 2), (5, 3)])
    def test_inverse(self, n, d):
        embedding = PaperMeshReshapeEmbedding(n, d)
        for coords in embedding.guest.nodes():
            assert embedding.inverse(embedding.map_node(coords)) == coords

    @pytest.mark.parametrize("n,d", [(4, 2), (5, 2), (5, 3), (6, 2)])
    def test_dilation_is_one_expansion_is_one(self, n, d):
        embedding = PaperMeshReshapeEmbedding(n, d)
        metrics = measure_embedding(embedding)
        assert metrics.dilation == 1
        assert metrics.expansion == 1.0
        assert embedding.measured_dilation() == 1

    def test_d_equals_one_is_a_snake_through_the_whole_mesh(self):
        # A single guest dimension of length n!: the image sequence must be a
        # Hamiltonian path of D_n (every step one mesh edge).
        embedding = PaperMeshReshapeEmbedding(4, 1)
        assert embedding.guest.sides == (24,)
        metrics = measure_embedding(embedding)
        assert metrics.dilation == 1

    def test_d_equals_n_minus_1_is_the_identity_reshape(self):
        embedding = PaperMeshReshapeEmbedding(5, 4)
        assert embedding.guest.sides == (5, 4, 3, 2)
        # Same shape, but the Gray reflection still permutes coordinates within a
        # dimension; the map must still be a dilation-1 bijection.
        assert measure_embedding(embedding).dilation == 1

    def test_validates(self):
        PaperMeshReshapeEmbedding(5, 2).validate()

    def test_rejects_bad_arguments(self):
        with pytest.raises(InvalidParameterError):
            PaperMeshReshapeEmbedding(5, 0)
        with pytest.raises(InvalidParameterError):
            PaperMeshReshapeEmbedding(5, 5)
        with pytest.raises(InvalidParameterError):
            PaperMeshReshapeEmbedding(1, 1)

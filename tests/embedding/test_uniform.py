"""Unit tests for repro.embedding.uniform (Section 4 and the Appendix)."""

import math

import pytest

from repro.exceptions import InvalidParameterError
from repro.embedding.uniform import (
    UniformMeshSimulation,
    atallah_slowdown,
    factorise_paper_mesh,
    optimal_simulation_dimension,
    uniform_on_paper_mesh_slowdown,
)
from repro.topology.mesh import Mesh


class TestFactorisePaperMesh:
    def test_paper_style_examples(self):
        assert factorise_paper_mesh(6, 2) == (48, 15)
        assert factorise_paper_mesh(7, 3) == (28, 18, 10)

    @pytest.mark.parametrize("n", [3, 4, 5, 6, 7, 8, 9, 10])
    def test_product_is_factorial(self, n):
        for d in range(1, n):
            assert math.prod(factorise_paper_mesh(n, d)) == math.factorial(n)

    def test_d_equals_one_collapses_to_a_line(self):
        assert factorise_paper_mesh(5, 1) == (math.factorial(5),)

    def test_d_equals_n_minus_1_recovers_the_paper_mesh(self):
        assert factorise_paper_mesh(5, 4) == (5, 4, 3, 2)

    def test_spread_bound(self):
        # l_1 / l_d < n (1 + n mod d) <= n d  (Appendix).
        for n in range(4, 11):
            for d in range(2, n):
                sides = factorise_paper_mesh(n, d)
                assert max(sides) / min(sides) <= n * d

    def test_rejects_bad_arguments(self):
        with pytest.raises(InvalidParameterError):
            factorise_paper_mesh(5, 0)
        with pytest.raises(InvalidParameterError):
            factorise_paper_mesh(5, 5)
        with pytest.raises(InvalidParameterError):
            factorise_paper_mesh(1, 1)


class TestSlowdownFormulas:
    def test_uniform_sides_give_unity_base_slowdown(self):
        # A mesh that already is uniform simulates itself with slowdown 1 (Theorem 7).
        assert atallah_slowdown((8, 8, 8), account_dimension=False) == pytest.approx(1.0)

    def test_dimension_factor(self):
        base = atallah_slowdown((8, 8, 8), account_dimension=False)
        with_dim = atallah_slowdown((8, 8, 8), account_dimension=True)
        assert with_dim == pytest.approx(base * 8)

    def test_rejects_empty_or_nonpositive(self):
        with pytest.raises(InvalidParameterError):
            atallah_slowdown(())
        with pytest.raises(InvalidParameterError):
            atallah_slowdown((4, 0))

    def test_paper_mesh_slowdowns_monotone_structure(self):
        bounds = uniform_on_paper_mesh_slowdown(6)
        assert bounds["theorem8"] == pytest.approx(bounds["theorem7"] * 2 ** 5)
        assert bounds["on_star"] == pytest.approx(3 * bounds["theorem8"])
        assert bounds["paper_bound"] > 1

    def test_theorem7_slowdown_value(self):
        # For D_n: max l_i = n, N^{1/(n-1)} = (n!)^{1/(n-1)}.
        n = 5
        expected = n / (math.factorial(n) ** (1 / (n - 1)))
        assert uniform_on_paper_mesh_slowdown(n)["theorem7"] == pytest.approx(expected)


class TestOptimalDimension:
    def test_small_degrees(self):
        for n in range(3, 12):
            d = optimal_simulation_dimension(n)
            assert 1 <= d <= n - 1

    def test_optimum_is_a_discrete_argmin(self):
        n = 9
        total = math.factorial(n)
        best = optimal_simulation_dimension(n)
        cost = lambda d: d * 2**d * total ** (2 / d)  # noqa: E731
        assert all(cost(best) <= cost(d) for d in range(1, n))

    def test_grows_with_n(self):
        assert optimal_simulation_dimension(12) >= optimal_simulation_dimension(4)


class TestUniformMeshSimulation:
    def test_requires_target_or_degree(self):
        with pytest.raises(InvalidParameterError):
            UniformMeshSimulation((3, 3))

    def test_rejects_bad_sides(self):
        with pytest.raises(InvalidParameterError):
            UniformMeshSimulation((), n=4)
        with pytest.raises(InvalidParameterError):
            UniformMeshSimulation((3, 0), n=4)

    def test_map_node_stays_in_target(self):
        sim = UniformMeshSimulation((3, 3, 3), n=4)
        for coords in sim.uniform_mesh.nodes():
            assert sim.target_mesh.is_node(sim.map_node(coords))

    def test_load_balance(self):
        # 27 uniform nodes onto 24 target nodes: loads are 1 or 2.
        sim = UniformMeshSimulation((3, 3, 3), n=4)
        metrics = sim.measure()
        assert metrics.uniform_nodes == 27 and metrics.target_nodes == 24
        assert metrics.min_load >= 1 and metrics.max_load <= 2

    def test_equal_sizes_give_bijection(self):
        sim = UniformMeshSimulation((4, 3, 2), target=Mesh((4, 3, 2)))
        metrics = sim.measure()
        assert metrics.max_load == metrics.min_load == 1
        assert metrics.max_edge_distance >= 1

    def test_edge_stretch_bounded_by_target_diameter(self):
        sim = UniformMeshSimulation((3, 3, 3), n=4)
        metrics = sim.measure()
        assert metrics.max_edge_distance <= sim.target_mesh.diameter()
        assert metrics.average_edge_distance <= metrics.max_edge_distance

    @pytest.mark.parametrize(
        "sides,n",
        [((3, 3, 3), 4), ((4, 4, 4), 4), ((5, 5), 4), ((2,), 2), ((3, 3, 3, 3), 5)],
    )
    def test_vectorised_measure_matches_reference(self, sides, n):
        # PR-3 parity contract: the array sweep equals the per-node enumeration.
        sim = UniformMeshSimulation(sides, n=n)
        assert sim.measure() == sim.measure_reference()

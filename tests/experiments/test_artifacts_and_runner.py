"""Tests for the artifact store, the sharded runner and the report renderers.

The headline contracts:

* **Serial/sharded parity** -- ``run_shards(jobs=2)`` produces payloads
  bit-identical to the serial engine (and to the CLI's serial ``--json``).
* **Resumability** -- re-running against a populated store executes nothing.
* **Content addressing** -- keys depend only on ``(experiment, profile,
  params)``, with stable ordering of the params mapping.
"""

import json

import pytest

from repro.analysis.stored import claim_summary, load_results, stored_result, stored_rows
from repro.exceptions import (
    ArtifactCorruptError,
    ArtifactError,
    InvalidParameterError,
    ShardFailedError,
)
from repro.experiments.artifacts import (
    ArtifactSchema,
    ArtifactStore,
    artifact_key,
    build_payload,
    build_record,
    canonical_json,
    environment_stamp,
    validate_payload,
    validate_record,
)
from repro.experiments.registry import EXPERIMENTS, get_spec, list_experiments, run_experiment
from repro.experiments.report import (
    ExperimentResult,
    render_html_report,
    render_markdown_report,
    result_from_payload,
)
from repro.experiments.runner import (
    Shard,
    execute_shard,
    plan_shards,
    registry_sorted,
    run_shards,
)

#: Cheap experiments used where the whole registry would be overkill.
CHEAP_IDS = ["FIG4", "FIG7", "TAB1", "LEM1"]


class TestArtifactKey:
    def test_stable_across_param_order(self):
        a = artifact_key("THM4", "fast", {"degrees": (3, 4), "x": 1})
        b = artifact_key("THM4", "fast", {"x": 1, "degrees": (3, 4)})
        assert a == b
        assert len(a) == 16 and int(a, 16) >= 0

    def test_distinct_inputs_distinct_keys(self):
        base = artifact_key("THM4", "fast", {"degrees": [3, 4]})
        assert artifact_key("THM4", "heavy", {"degrees": [3, 4]}) != base
        assert artifact_key("THM6", "fast", {"degrees": [3, 4]}) != base
        assert artifact_key("THM4", "fast", {"degrees": [3, 5]}) != base

    def test_tuple_and_list_params_agree(self):
        # Params pass through json_safe, so tuples and lists address equally.
        assert artifact_key("X", "default", {"d": (3, 4)}) == artifact_key(
            "X", "default", {"d": [3, 4]}
        )

    def test_canonical_json_sorts_keys(self):
        assert canonical_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'


class TestArtifactSchema:
    def test_every_spec_declares_a_schema(self):
        for experiment_id, spec in EXPERIMENTS.items():
            assert spec.schema is not None, experiment_id
            assert spec.schema.columns, experiment_id
            assert "claim_holds" in spec.schema.summary_keys, experiment_id

    def test_declared_columns_match_emitted_headers(self):
        for experiment_id in CHEAP_IDS:
            spec = get_spec(experiment_id)
            result = run_experiment(experiment_id, profile="fast")
            assert tuple(result.headers) == tuple(spec.schema.columns)

    def test_claim_holds_injected_when_missing(self):
        schema = ArtifactSchema(columns=("a",), summary_keys=("extra",))
        assert schema.summary_keys == ("claim_holds", "extra")

    def test_validate_payload_rejects_header_drift(self):
        spec = get_spec("FIG4")
        result = run_experiment("FIG4")
        payload = build_payload("default", {}, result)
        validate_payload(payload, spec.schema)  # the real payload passes
        bad = dict(payload, headers=["wrong"])
        with pytest.raises(ArtifactError):
            validate_payload(bad, spec.schema)

    def test_validate_payload_rejects_missing_summary_key(self):
        spec = get_spec("FIG4")
        payload = build_payload("default", {}, run_experiment("FIG4"))
        bad = dict(payload, summary={"claim_holds": True})  # drops dilation etc.
        with pytest.raises(ArtifactError):
            validate_payload(bad, spec.schema)

    def test_validate_payload_rejects_ragged_rows(self):
        spec = get_spec("FIG4")
        payload = build_payload("default", {}, run_experiment("FIG4"))
        bad = dict(payload, rows=[["only one cell"]])
        with pytest.raises(ArtifactError):
            validate_payload(bad, spec.schema)

    def test_validate_payload_envelope(self):
        with pytest.raises(ArtifactError):
            validate_payload({"experiment_id": "X"}, None)


class TestArtifactStore:
    def _record(self, experiment_id="FIG4", profile="default"):
        result = run_experiment(experiment_id, profile=profile)
        payload = build_payload(profile, {}, result)
        key = artifact_key(experiment_id, profile, {})
        return build_record(key, payload, 0.25)

    def test_write_read_round_trip(self, tmp_path):
        store = ArtifactStore(tmp_path / "results")
        record = self._record()
        path = store.write(record)
        assert path.name == "FIG4__default__" + record["key"] + ".json"
        loaded = store.read("FIG4", "default", record["key"])
        assert loaded == json.loads(json.dumps(record))  # JSON round-trip equal
        assert store.exists("FIG4", "default", record["key"])
        assert len(store) == 1

    def test_environment_stamp_recorded(self, tmp_path):
        record = self._record()
        env = record["environment"]
        assert env["python"] and env["platform"]
        assert set(environment_stamp()) == set(env)

    def test_read_missing_raises(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with pytest.raises(ArtifactError):
            store.read("FIG4", "default", "0" * 16)

    def test_read_corrupt_raises(self, tmp_path):
        store = ArtifactStore(tmp_path)
        record = self._record()
        path = store.write(record)
        path.write_text("{ not json")
        with pytest.raises(ArtifactError):
            store.read("FIG4", "default", record["key"])

    def test_validate_record_envelope(self):
        with pytest.raises(ArtifactError):
            validate_record({"key": "abc"})

    def test_stale_schema_version_rejected(self, tmp_path):
        """A store written under an older record layout must not be reused."""
        store = ArtifactStore(tmp_path)
        record = self._record()
        path = store.write(record)
        stale = json.loads(path.read_text())
        stale["schema_version"] = 0
        path.write_text(json.dumps(stale))
        with pytest.raises(ArtifactError, match="schema_version"):
            store.read("FIG4", "default", record["key"])

    def test_entries_sorted_and_temp_files_ignored(self, tmp_path):
        store = ArtifactStore(tmp_path)
        for experiment_id in ("TAB1", "FIG4"):
            result = run_experiment(experiment_id, profile="fast")
            params = get_spec(experiment_id).params("fast")
            payload = build_payload("fast", params, result)
            store.write(
                build_record(artifact_key(experiment_id, "fast", params), payload, 0.0)
            )
        (tmp_path / ".tmp-leftover.json").write_text("junk")
        entries = store.entries()
        assert [e["payload"]["experiment_id"] for e in entries] == ["FIG4", "TAB1"]

    def test_empty_store(self, tmp_path):
        store = ArtifactStore(tmp_path / "never-created")
        assert store.entries() == [] and len(store) == 0


class TestPlanShards:
    def test_all_resolves_registry_order(self):
        shards = plan_shards(["all"], profile="fast")
        assert [s.experiment_id for s in shards] == list_experiments()
        assert all(s.profile == "fast" for s in shards)

    def test_none_means_all(self):
        assert [s.experiment_id for s in plan_shards(None)] == list_experiments()

    def test_params_sorted_and_key_attached(self):
        (shard,) = plan_shards(["CMP"], profile="fast")
        names = [name for name, _ in shard.params]
        assert names == sorted(names)
        assert shard.key == artifact_key("CMP", "fast", dict(shard.params))

    def test_case_insensitive_and_overrides(self):
        (shard,) = plan_shards(["lem1"], profile="fast", overrides={"max_n": 4})
        assert shard.experiment_id == "LEM1"
        assert dict(shard.params) == {"max_n": 4}

    def test_unknown_experiment_raises(self):
        with pytest.raises(InvalidParameterError):
            plan_shards(["NOPE"])


class TestRunShards:
    def test_serial_matches_direct_run(self):
        shards = plan_shards(CHEAP_IDS, profile="fast")
        report = run_shards(shards)
        assert len(report.records) == len(CHEAP_IDS)
        assert report.executed and not report.cached
        for shard, payload in zip(shards, report.payloads()):
            direct = run_experiment(shard.experiment_id, profile="fast")
            expected = build_payload("fast", dict(shard.params), direct)
            assert payload == json.loads(json.dumps(expected))
        assert report.claims_hold()

    def test_parallel_rows_equal_serial_rows_exactly(self):
        """The PR's core parity claim: --jobs 2 rows == serial rows, bit for bit."""
        shards = plan_shards(["all"], profile="fast")
        serial = run_shards(shards, jobs=1)
        parallel = run_shards(shards, jobs=2)
        assert json.dumps(serial.payloads(), sort_keys=True) == json.dumps(
            parallel.payloads(), sort_keys=True
        )
        # Ordering too: payload lists aggregate in shard order on both engines.
        assert json.dumps(serial.payloads()) == json.dumps(parallel.payloads())

    def test_store_resume_is_noop(self, tmp_path):
        store = ArtifactStore(tmp_path / "results")
        shards = plan_shards(CHEAP_IDS, profile="fast")
        first = run_shards(shards, store=store)
        assert len(first.executed) == len(CHEAP_IDS)
        second = run_shards(shards, store=store)
        assert second.executed == [] and len(second.cached) == len(CHEAP_IDS)
        assert second.payloads() == first.payloads()

    def test_partial_store_runs_only_missing(self, tmp_path):
        store = ArtifactStore(tmp_path / "results")
        shards = plan_shards(CHEAP_IDS, profile="fast")
        run_shards(shards[:2], store=store)
        report = run_shards(shards, store=store)
        assert sorted(report.cached) == sorted(s.key for s in shards[:2])
        assert sorted(report.executed) == sorted(s.key for s in shards[2:])

    def test_force_reruns_everything(self, tmp_path):
        store = ArtifactStore(tmp_path / "results")
        shards = plan_shards(["FIG4"], profile="fast")
        run_shards(shards, store=store)
        report = run_shards(shards, store=store, force=True)
        assert len(report.executed) == 1 and not report.cached

    def test_different_profiles_do_not_collide(self, tmp_path):
        store = ArtifactStore(tmp_path / "results")
        run_shards(plan_shards(["LEM1"], profile="fast"), store=store)
        report = run_shards(plan_shards(["LEM1"], profile="default"), store=store)
        assert report.executed  # the default profile is a different key
        assert len(store) == 2

    def test_progress_callback_streams_records_in_order(self, tmp_path):
        store = ArtifactStore(tmp_path / "results")
        events = []

        def on_progress(shard, status, elapsed, record):
            assert record["payload"]["experiment_id"] == shard.experiment_id
            events.append((shard.experiment_id, status))

        shards = plan_shards(["FIG4", "TAB1"], profile="fast")
        run_shards(shards, store=store, progress=on_progress)
        run_shards(shards, store=store, progress=on_progress)
        # jobs=1 resolves strictly in shard order, cached or not.
        assert events == [
            ("FIG4", "ran"), ("TAB1", "ran"),
            ("FIG4", "cached"), ("TAB1", "cached"),
        ]

    def test_stale_cached_payload_reruns(self, tmp_path):
        """A stored artifact whose shape no longer matches the declared schema
        is treated as a miss and re-run, not served (the key covers only
        params, not code identity)."""
        store = ArtifactStore(tmp_path / "results")
        (shard,) = plan_shards(["FIG4"])
        run_shards([shard], store=store)
        path = store.path_for(shard.experiment_id, shard.profile, shard.key)
        stale = json.loads(path.read_text())
        stale["payload"]["headers"] = ["an", "old", "layout"]
        path.write_text(json.dumps(stale))
        report = run_shards([shard], store=store)
        assert report.executed == [shard.key] and not report.cached
        # The store is healed: the fresh record passes validation again.
        healed = run_shards([shard], store=store)
        assert healed.cached == [shard.key]

    def test_invalid_jobs_rejected(self):
        with pytest.raises(InvalidParameterError):
            run_shards([], jobs=0)

    def test_execute_shard_validates_schema(self):
        (shard,) = plan_shards(["FIG4"])
        record = execute_shard(shard)
        assert record["key"] == shard.key
        assert record["elapsed_seconds"] >= 0
        assert record["payload"]["experiment_id"] == "FIG4"


class TestRegistrySorted:
    def test_registry_order_restored_from_alphabetical(self, tmp_path):
        store = ArtifactStore(tmp_path)
        run_shards(plan_shards(["TAB1", "FIG4", "LEM1"], profile="fast"), store=store)
        ordered = registry_sorted(store.entries())
        assert [r["payload"]["experiment_id"] for r in ordered] == ["FIG4", "TAB1", "LEM1"]


class TestStoredAnalysis:
    @pytest.fixture(scope="class")
    def populated(self, tmp_path_factory):
        store = ArtifactStore(tmp_path_factory.mktemp("store"))
        run_shards(plan_shards(CHEAP_IDS, profile="fast"), store=store)
        return store

    def test_load_results_keys_and_order(self, populated):
        results = load_results(populated)
        assert list(results) == [(i, "fast") for i in ["FIG4", "FIG7", "TAB1", "LEM1"]]

    def test_stored_result_round_trips_direct_run(self, populated):
        stored = stored_result(populated, "lem1", "fast")
        direct = run_experiment("LEM1", profile="fast")
        # JSON round-trip normalises tuples to lists; compare via to_dict.
        assert stored.to_dict() == json.loads(json.dumps(direct.to_dict()))

    def test_stored_rows(self, populated):
        headers, rows = stored_rows(populated, "LEM1")
        assert headers[0] == "n" and rows[-1][0] == 6  # fast profile caps at 6

    def test_stored_result_missing(self, populated):
        with pytest.raises(ArtifactError):
            stored_result(populated, "THM4")
        with pytest.raises(ArtifactError):
            stored_result(populated, "LEM1", "heavy")

    def test_claim_summary(self, populated):
        verdicts = claim_summary(populated)
        assert set(verdicts) == set(CHEAP_IDS)
        assert all(verdicts.values())


class TestReportRenderers:
    @pytest.fixture(scope="class")
    def records(self, tmp_path_factory):
        store = ArtifactStore(tmp_path_factory.mktemp("report-store"))
        run_shards(plan_shards(CHEAP_IDS, profile="fast"), store=store)
        return registry_sorted(store.entries())

    def test_result_from_payload_inverts_to_dict(self):
        result = ExperimentResult(
            "X", "t", ["h1", "h2"], [[1, "a"]], notes=["n"], summary={"claim_holds": True}
        )
        rebuilt = result_from_payload(result.to_dict())
        assert rebuilt.to_dict() == result.to_dict()

    def test_markdown_report_sections(self, records):
        text = render_markdown_report(records, title="Store report")
        assert text.startswith("# Store report")
        assert "## Environment" in text
        for experiment_id in CHEAP_IDS:
            assert f"[{experiment_id}]" in text
        assert "| experiment | profile | claim | rows | wall-clock (s) |" in text
        assert "FAILS" not in text

    def testmarkdown_escapes_pipes_and_stars(self):
        record = build_record(
            "0" * 16,
            build_payload(
                "default",
                {},
                ExperimentResult(
                    "X", "the 2*3*4 mesh", ["a|b"], [["c|d"]],
                    summary={"claim_holds": True},
                ),
            ),
            0.0,
        )
        text = render_markdown_report([record])
        assert "a\\|b" in text and "c\\|d" in text
        # Titles with stars must not italicise ("2*3*4" -> "2<em>3</em>4").
        assert "the 2\\*3\\*4 mesh" in text

    def test_html_report_standalone_and_escaped(self, records):
        text = render_html_report(records, title="Store <report>")
        assert text.startswith("<!DOCTYPE html>")
        assert "Store &lt;report&gt;" in text
        assert "<style>" in text  # no external assets
        for experiment_id in CHEAP_IDS:
            assert experiment_id in text

    def test_mixed_environment_stamps_render(self):
        """Stamps mixing str and None values (with/without NumPy) must sort."""
        payload = build_payload(
            "default",
            {},
            ExperimentResult("X", "t", ["h"], [[1]], summary={"claim_holds": True}),
        )
        with_numpy = build_record("0" * 16, payload, 0.0, {"python": "3.11", "numpy": "1.26"})
        without_numpy = build_record("1" * 16, payload, 0.0, {"python": "3.11", "numpy": None})
        for renderer in (render_markdown_report, render_html_report):
            text = renderer([with_numpy, without_numpy])
            assert "numpy: 1.26" in text

    def test_failing_claim_flagged(self):
        record = build_record(
            "0" * 16,
            build_payload(
                "default",
                {},
                ExperimentResult("X", "t", ["h"], [[1]], summary={"claim_holds": False}),
            ),
            0.0,
        )
        assert "FAILS" in render_markdown_report([record])
        assert "fails" in render_html_report([record])


class TestCorruptVsStale:
    """Corrupt entries are quarantined (evidence kept); stale ones re-run."""

    def _write_cheap(self, store, experiment_id="FIG4", profile="fast"):
        result = run_experiment(experiment_id, profile=profile)
        params = get_spec(experiment_id).params(profile)
        payload = build_payload(profile, params, result)
        key = artifact_key(experiment_id, profile, params)
        return store.write(build_record(key, payload, 0.0)), key

    def test_corrupt_json_raises_corrupt_error(self, tmp_path):
        store = ArtifactStore(tmp_path)
        path, key = self._write_cheap(store)
        path.write_text("{ truncated")
        with pytest.raises(ArtifactCorruptError):
            store.read("FIG4", "fast", key)

    def test_missing_envelope_keys_are_corrupt(self, tmp_path):
        store = ArtifactStore(tmp_path)
        path, key = self._write_cheap(store)
        path.write_text(json.dumps({"key": key}))
        with pytest.raises(ArtifactCorruptError):
            store.read("FIG4", "fast", key)

    def test_stale_schema_version_is_not_corrupt(self, tmp_path):
        store = ArtifactStore(tmp_path)
        path, key = self._write_cheap(store)
        stale = json.loads(path.read_text())
        stale["schema_version"] = 0
        path.write_text(json.dumps(stale))
        with pytest.raises(ArtifactError) as excinfo:
            store.read("FIG4", "fast", key)
        assert not isinstance(excinfo.value, ArtifactCorruptError)

    def test_quarantine_renames_with_reason_sidecar(self, tmp_path):
        store = ArtifactStore(tmp_path)
        path, key = self._write_cheap(store)
        path.write_text("garbage")
        moved = store.quarantine("FIG4", "fast", key, reason="not json")
        assert moved is not None and moved.name == path.name + ".corrupt"
        assert not path.exists() and moved.read_text() == "garbage"
        assert moved.with_name(moved.name + ".reason").read_text().strip() == "not json"
        # Quarantined files are invisible to the store's normal listing...
        assert store.entries() == [] and not store.exists("FIG4", "fast", key)
        # ...but enumerable for diagnostics.
        assert store.corrupt_files() == [moved]
        # Quarantining an absent entry is a no-op, not an error.
        assert store.quarantine("FIG4", "fast", key) is None

    def test_runner_quarantines_corrupt_and_reruns(self, tmp_path):
        store = ArtifactStore(tmp_path)
        shards = plan_shards(["FIG4", "TAB1"], profile="fast")
        baseline = run_shards(shards, store=store)
        victim = tmp_path / store.filename("FIG4", "fast", shards[0].key)
        victim.write_text("{ not json")
        warnings = []
        report = run_shards(shards, store=store, warn=warnings.append)
        # The corrupt shard re-ran, the healthy one cache-hit.
        assert report.executed == [shards[0].key]
        assert report.cached == [shards[1].key]
        assert report.payloads() == baseline.payloads()
        assert any("quarantined" in w for w in warnings)
        assert len(store.corrupt_files()) == 1
        # The store healed: a fresh run is a full cache hit.
        healed = run_shards(shards, store=store)
        assert healed.executed == [] and len(healed.cached) == 2

    def test_runner_reruns_stale_without_quarantine(self, tmp_path):
        store = ArtifactStore(tmp_path)
        shards = plan_shards(["FIG4"], profile="fast")
        run_shards(shards, store=store)
        path = tmp_path / store.filename("FIG4", "fast", shards[0].key)
        stale = json.loads(path.read_text())
        stale["schema_version"] = 0
        path.write_text(json.dumps(stale))
        report = run_shards(shards, store=store)
        assert report.executed == [shards[0].key]
        assert report.warnings == [] and store.corrupt_files() == []

    def test_scan_reports_unreadable_entries(self, tmp_path):
        store = ArtifactStore(tmp_path)
        path, _ = self._write_cheap(store)
        bad = tmp_path / "TAB1__fast__0000000000000000.json"
        bad.write_text("}{")
        readable, unreadable = store.scan()
        assert [r["payload"]["experiment_id"] for r in readable] == ["FIG4"]
        assert len(unreadable) == 1 and unreadable[0][0] == bad


class TestRunnerRetries:
    """Bounded retry with backoff; permanent failures degrade gracefully."""

    def test_forced_failure_exhausts_budget_serial(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS_FAIL", "TAB1")
        store = ArtifactStore(tmp_path)
        shards = plan_shards(CHEAP_IDS, profile="fast")
        events = []
        report = run_shards(
            shards,
            store=store,
            max_retries=1,
            retry_backoff=0.0,
            progress=lambda s, status, e, r: events.append((s.experiment_id, status)),
        )
        assert not report.ok
        assert [f.shard.experiment_id for f in report.failed] == ["TAB1"]
        assert report.failed[0].attempts == 2  # initial try + 1 retry
        assert "chaos hook" in report.failed[0].error
        # Siblings completed and persisted despite the failure.
        assert len(report.records) == len(CHEAP_IDS) - 1
        assert ("TAB1", "retry") in events and ("TAB1", "failed") in events
        with pytest.raises(ShardFailedError, match="TAB1"):
            report.raise_failures()
        # The failed shard left nothing behind; healing run completes it.
        monkeypatch.delenv("REPRO_CHAOS_FAIL")
        healed = run_shards(shards, store=store)
        assert healed.ok and healed.executed == [
            s.key for s in shards if s.experiment_id == "TAB1"
        ]

    def test_forced_failure_degrades_parallel(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS_FAIL", "LEM1")
        store = ArtifactStore(tmp_path)
        shards = plan_shards(CHEAP_IDS, profile="fast")
        report = run_shards(
            shards, jobs=2, store=store, max_retries=0, retry_backoff=0.0
        )
        assert [f.shard.experiment_id for f in report.failed] == ["LEM1"]
        assert len(report.records) == len(CHEAP_IDS) - 1
        assert len(report.records) + len(report.failed) == len(shards)

    def test_retry_succeeds_within_budget(self, tmp_path, monkeypatch):
        # The hang hook with a flag file fires exactly once; with zero hang
        # seconds it is a benign no-op marker, so use FAIL semantics instead:
        # a shard that fails once then succeeds must not surface as failed.
        calls = {"n": 0}
        from repro.experiments import runner as runner_mod

        original = runner_mod.execute_shard

        def flaky(shard, environment=None):
            if shard.experiment_id == "FIG4" and calls["n"] == 0:
                calls["n"] += 1
                raise RuntimeError("transient")
            return original(shard, environment)

        monkeypatch.setattr(runner_mod, "execute_shard", flaky)
        shards = plan_shards(["FIG4"], profile="fast")
        report = runner_mod.run_shards(shards, max_retries=1, retry_backoff=0.0)
        assert report.ok and len(report.records) == 1
        assert any("retrying" in w for w in report.warnings)

    def test_invalid_arguments_rejected(self):
        shards = plan_shards(["FIG4"], profile="fast")
        with pytest.raises(InvalidParameterError):
            run_shards(shards, max_retries=-1)
        with pytest.raises(InvalidParameterError):
            run_shards(shards, shard_timeout=0.0)
        with pytest.raises(InvalidParameterError):
            run_shards(shards, retry_backoff=-0.5)


class TestRunnerChaos:
    """Worker death and hangs: the campaign survives and stays bit-exact."""

    def test_sigkill_mid_campaign_resumes_bit_identical(self, tmp_path, monkeypatch):
        """Acceptance: a SIGKILLed worker neither loses completed shards nor
        corrupts the store; the victim retries and the final aggregate equals
        the all-serial run bit for bit."""
        shards = plan_shards(CHEAP_IDS, profile="fast")
        serial = run_shards(shards, store=ArtifactStore(tmp_path / "serial"))
        assert serial.ok

        flag = tmp_path / "kill-once"
        monkeypatch.setenv("REPRO_CHAOS_KILL", "TAB1")
        monkeypatch.setenv("REPRO_CHAOS_KILL_FLAG", str(flag))
        store = ArtifactStore(tmp_path / "chaos")
        report = run_shards(shards, jobs=2, store=store, retry_backoff=0.0)
        assert flag.exists()  # the kill actually fired
        assert report.ok, [f.error for f in report.failed]
        assert any("worker process died" in w for w in report.warnings)
        assert json.dumps(report.payloads()) == json.dumps(serial.payloads())
        assert store.corrupt_files() == []
        # Resume: everything is cached, still bit-identical to serial.
        resumed = run_shards(shards, jobs=2, store=store)
        assert resumed.executed == [] and len(resumed.cached) == len(shards)
        assert json.dumps(resumed.payloads()) == json.dumps(serial.payloads())

    def test_repeated_worker_death_bounded(self, tmp_path, monkeypatch):
        """A shard that reliably kills its worker fails after the death
        budget instead of respawning pools forever."""
        monkeypatch.setenv("REPRO_CHAOS_KILL", "TAB1")  # no flag: every time
        shards = plan_shards(["TAB1", "FIG4"], profile="fast")
        report = run_shards(shards, jobs=2, retry_backoff=0.0)
        assert [f.shard.experiment_id for f in report.failed] == ["TAB1"]
        assert "worker process died" in report.failed[0].error
        assert [r["payload"]["experiment_id"] for r in report.records] == ["FIG4"]

    def test_hang_times_out_and_fails(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS_HANG", "TAB1")
        monkeypatch.setenv("REPRO_CHAOS_HANG_SECONDS", "30")
        shards = plan_shards(["TAB1", "FIG4"], profile="fast")
        report = run_shards(
            shards, jobs=2, max_retries=0, shard_timeout=1.0, retry_backoff=0.0
        )
        assert [f.shard.experiment_id for f in report.failed] == ["TAB1"]
        assert "timed out" in report.failed[0].error
        assert [r["payload"]["experiment_id"] for r in report.records] == ["FIG4"]

    def test_serial_engine_ignores_kill_hook(self, monkeypatch):
        """The kill hook is worker-only: the in-process engine must survive."""
        monkeypatch.setenv("REPRO_CHAOS_KILL", "FIG4")
        shards = plan_shards(["FIG4"], profile="fast")
        report = run_shards(shards)
        assert report.ok and len(report.records) == 1


class TestSampledCampaignChaos:
    """The S_13 sampled campaigns under the same chaos and schema discipline.

    The campaigns are pure functions of ``(seed, label, point, trial)``
    coordinates, so a SIGKILLed worker must replay to the bit-identical
    aggregate -- including the ``truncated`` accounting channel, which the
    schema validation below pins as a first-class payload field.
    """

    SAMPLED_IDS = ["SAMPLED-FAULT", "SAMPLED-STRETCH"]

    def test_sigkill_mid_sampled_fault_resumes_bit_identical(
        self, tmp_path, monkeypatch
    ):
        shards = plan_shards(self.SAMPLED_IDS, profile="fast")
        serial = run_shards(shards, store=ArtifactStore(tmp_path / "serial"))
        assert serial.ok

        flag = tmp_path / "kill-once"
        monkeypatch.setenv("REPRO_CHAOS_KILL", "SAMPLED-FAULT")
        monkeypatch.setenv("REPRO_CHAOS_KILL_FLAG", str(flag))
        store = ArtifactStore(tmp_path / "chaos")
        report = run_shards(shards, jobs=2, store=store, retry_backoff=0.0)
        assert flag.exists()
        assert report.ok, [f.error for f in report.failed]
        assert any("worker process died" in w for w in report.warnings)
        assert json.dumps(report.payloads()) == json.dumps(serial.payloads())
        assert store.corrupt_files() == []
        # Resume: every shard cached, aggregate still bit-identical.
        resumed = run_shards(shards, jobs=2, store=store)
        assert resumed.executed == [] and len(resumed.cached) == len(shards)
        assert json.dumps(resumed.payloads()) == json.dumps(serial.payloads())

    @pytest.mark.parametrize("experiment_id", SAMPLED_IDS)
    def test_payload_validates_with_truncation_fields(self, experiment_id):
        spec = get_spec(experiment_id)
        result = run_experiment(experiment_id, profile="fast")
        payload = build_payload("fast", spec.params("fast"), result)
        validate_payload(payload, spec.schema)

        # The truncated channel is part of the declared contract, not an
        # optional extra: it appears both per row and in the summary.
        assert "truncated" in spec.schema.columns
        assert "total_truncated" in spec.schema.summary_keys
        truncated = payload["headers"].index("truncated")
        pairs = payload["headers"].index("pairs")
        total_truncated = 0
        for row in payload["rows"]:
            assert 0 <= row[truncated] <= row[pairs]
            total_truncated += row[truncated]
        assert payload["summary"]["total_truncated"] == total_truncated

        # Dropping the accounting key must fail validation outright.
        stripped = {
            key: value
            for key, value in payload["summary"].items()
            if key != "total_truncated"
        }
        with pytest.raises(ArtifactError):
            validate_payload(dict(payload, summary=stripped), spec.schema)

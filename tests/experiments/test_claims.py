"""Tests for the claim-measurement experiments (LEM1..CMP).

Each test runs the experiment at a reduced size (the registry's full sizes are
exercised by the benchmarks) and asserts that the paper's claim holds on the
measured data.
"""

import pytest

from repro.experiments.claims import (
    exp_broadcast,
    exp_dilation,
    exp_lemma1_no_dilation1,
    exp_lemma2_transposition_distance,
    exp_network_family,
    exp_optimal_dimension,
    exp_sorting,
    exp_star_properties,
    exp_star_vs_hypercube,
    exp_uniform_mesh,
    exp_unit_route_simulation,
)


class TestLemma1:
    def test_claim(self):
        result = exp_lemma1_no_dilation1.run(max_n=7)
        result.assert_claim()

    def test_only_n2_allows_dilation_one(self):
        result = exp_lemma1_no_dilation1.run(max_n=6)
        possible = {row[0]: row[4] for row in result.rows}
        assert possible[2] == "yes"
        assert all(possible[n] == "no" for n in range(3, 7))


class TestLemma2:
    def test_claim(self):
        result = exp_lemma2_transposition_distance.run(degrees=(3, 4))
        result.assert_claim()

    def test_no_other_distances_observed(self):
        result = exp_lemma2_transposition_distance.run(degrees=(4,))
        assert all(row[4] == 0 for row in result.rows)

    def test_distance_one_count_matches_formula(self):
        # For every node exactly n-1 of the C(n,2) symbol pairs involve the front symbol.
        result = exp_lemma2_transposition_distance.run(degrees=(4,))
        row = result.rows[0]
        nodes_checked = row[1]
        assert row[2] == nodes_checked * 3
        assert row[3] == nodes_checked * 3  # C(4,2)=6 pairs, 3 with the front symbol


class TestTheorem4:
    def test_claim(self):
        result = exp_dilation.run(degrees=(3, 4, 5))
        result.assert_claim()

    def test_every_row_reports_dilation_3(self):
        result = exp_dilation.run(degrees=(4, 5))
        assert all(row[4] == 3 for row in result.rows)
        assert all(row[3] == 1.0 for row in result.rows)


class TestTheorem6:
    def test_claim(self):
        result = exp_unit_route_simulation.run(degrees=(3, 4))
        result.assert_claim()

    def test_rows_cover_every_dimension_and_direction(self):
        result = exp_unit_route_simulation.run(degrees=(4,))
        assert len(result.rows) == 3 * 2
        assert all(row[5] <= 3 for row in result.rows)


class TestStarProperties:
    def test_claim(self):
        result = exp_star_properties.run(degrees=(3, 4), fault_trials=5)
        result.assert_claim()


class TestBroadcast:
    def test_claim(self):
        result = exp_broadcast.run(degrees=(3, 4))
        result.assert_claim()

    def test_ratio_column_within_three(self):
        result = exp_broadcast.run(degrees=(4,))
        assert all(row[8] <= 3.0 for row in result.rows)


class TestUniformMesh:
    def test_claim(self):
        result = exp_uniform_mesh.run(degrees=(3, 4, 5), measured_degrees=(3, 4))
        result.assert_claim()

    def test_bounds_grow_with_n(self):
        result = exp_uniform_mesh.run(degrees=(4, 6, 8), measured_degrees=())
        theorem8 = [row[3] for row in result.rows]
        assert theorem8 == sorted(theorem8)


class TestOptimalDimension:
    def test_claim(self):
        result = exp_optimal_dimension.run(degrees=(5, 6, 7))
        result.assert_claim()

    def test_two_dimensional_factorisation_column(self):
        result = exp_optimal_dimension.run(degrees=(6,))
        assert result.rows[0][2] == "48x15"


class TestSorting:
    def test_claim(self):
        result = exp_sorting.run(degrees=(4,))
        result.assert_claim()

    def test_ratio_and_bound_columns(self):
        result = exp_sorting.run(degrees=(4,))
        row = result.rows[0]
        assert row[4] <= 3.0
        assert row[6] <= row[7]


class TestStarVsHypercube:
    def test_claim(self):
        result = exp_star_vs_hypercube.run(max_degree=6, embedding_degrees=(3, 4))
        result.assert_claim()

    def test_row_count(self):
        result = exp_star_vs_hypercube.run(max_degree=6, embedding_degrees=(3,))
        # 5 formula rows (degrees 2..6), 17 measured rows (S/P/B_3..6 and
        # Q_2..Q_6 are all under the sweep's node bound), 1 embedding row.
        assert len(result.rows) == 5 + 17 + 1

    def test_measured_diameters_match_formulas(self):
        result = exp_star_vs_hypercube.run(max_degree=5, embedding_degrees=(3,))
        measured = [row for row in result.rows if "measured" in row[0]]
        assert measured
        assert all("(formula" in row[2] for row in measured)


class TestNetworkFamily:
    def test_claim(self):
        result = exp_network_family.run(degrees=(3, 4), fault_trials=3)
        result.assert_claim()

    def test_all_four_networks_per_degree(self):
        result = exp_network_family.run(degrees=(3, 4), fault_trials=1)
        networks = [row[1] for row in result.rows]
        assert networks == ["S_4", "P_4", "B_4", "Q_3", "S_5", "P_5", "B_5", "Q_4"]

    def test_permutation_families_share_node_count(self):
        result = exp_network_family.run(degrees=(3,), fault_trials=1)
        by_network = {row[1]: row for row in result.rows}
        assert by_network["S_4"][2] == by_network["P_4"][2] == by_network["B_4"][2] == 24
        assert by_network["Q_3"][2] == 8

    def test_measured_diameters_quote_formulas(self):
        result = exp_network_family.run(degrees=(3,), fault_trials=1)
        by_network = {row[1]: row[3] for row in result.rows}
        assert by_network["S_4"] == "4 (formula 4)"
        assert by_network["P_4"] == "4 (formula 4)"  # known pancake number
        assert by_network["B_4"] == "6 (formula 6)"  # n(n-1)/2
        assert by_network["Q_3"] == "3 (formula 3)"

    def test_broadcast_column_only_for_permutation_families(self):
        result = exp_network_family.run(degrees=(3,), fault_trials=1)
        by_network = {row[1]: row[7] for row in result.rows}
        assert by_network["Q_3"] == "-"
        for name in ("S_4", "P_4", "B_4"):
            assert "routes" in by_network[name]

"""Tests keeping the docs site in sync with the code.

``mkdocs build --strict`` runs in CI (mkdocs is not a runtime dependency of
the library), so these tests cover the failure modes that do not need mkdocs
itself: the generated catalogue page must match the registry, every page in
the nav must exist, and every relative Markdown link must resolve.
"""

import importlib.util
import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
DOCS_DIR = REPO_ROOT / "docs"
MKDOCS_YML = REPO_ROOT / "mkdocs.yml"


def _load_gen_catalogue():
    spec = importlib.util.spec_from_file_location(
        "gen_catalogue", DOCS_DIR / "gen_catalogue.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestGeneratedCatalogue:
    def test_page_in_sync_with_registry(self):
        """docs/experiments.md is exactly what gen_catalogue.py renders today."""
        gen = _load_gen_catalogue()
        expected = gen.render(gen.catalogue_json())
        page = (DOCS_DIR / "experiments.md").read_text()
        assert page == expected, (
            "docs/experiments.md is stale; run `python docs/gen_catalogue.py`"
        )

    def test_every_registered_experiment_listed(self):
        from repro.experiments.registry import list_experiments

        page = (DOCS_DIR / "experiments.md").read_text()
        for experiment_id in list_experiments():
            assert f"`{experiment_id}`" in page

    def test_check_mode_passes_on_committed_page(self, capsys):
        gen = _load_gen_catalogue()
        assert gen.main(["--check"]) == 0

    def test_generator_output_derives_from_list_json(self):
        gen = _load_gen_catalogue()
        catalogue = gen.catalogue_json()
        assert isinstance(catalogue, list) and len(catalogue) >= 17
        assert {"experiment_id", "title", "profiles"} <= set(catalogue[0])


class TestDocsSite:
    def _nav_paths(self):
        yaml = pytest.importorskip("yaml")
        config = yaml.safe_load(MKDOCS_YML.read_text())
        paths = []
        for entry in config["nav"]:
            (_, target), = entry.items()
            paths.append(target)
        return config, paths

    def test_nav_targets_exist(self):
        _, paths = self._nav_paths()
        for target in paths:
            assert (DOCS_DIR / target).is_file(), f"nav entry {target} has no page"

    def test_core_pages_in_nav(self):
        _, paths = self._nav_paths()
        for page in ("index.md", "quickstart.md", "architecture.md", "cli.md",
                     "experiments.md", "results.md"):
            assert page in paths

    def test_relative_links_resolve(self):
        """Strict-lite: every relative Markdown link targets an existing file."""
        link = re.compile(r"\[[^\]]*\]\(([^)]+)\)")
        for page in sorted(DOCS_DIR.glob("*.md")):
            for target in link.findall(page.read_text()):
                if target.startswith(("http://", "https://", "#", "mailto:")):
                    continue
                target_path = target.split("#", 1)[0]
                assert (page.parent / target_path).is_file(), (
                    f"{page.name}: broken relative link -> {target}"
                )

    def test_results_page_is_a_rendered_report(self):
        text = (DOCS_DIR / "results.md").read_text()
        assert "repro-star report" in text  # provenance header
        assert "# Results" in text
        assert "| experiment | profile | claim | rows | wall-clock (s) |" in text
        assert "FAILS" not in text  # the committed snapshot verifies every claim

    def test_site_dir_gitignored(self):
        # `mkdocs build` output must stay untracked (CI builds it fresh); a
        # local build legitimately creates site/, so check the ignore rule
        # rather than the directory's absence.
        assert "site/" in (REPO_ROOT / ".gitignore").read_text().splitlines()

"""Tests for the figure/table regeneration experiments (FIG2..FIG7, TAB1)."""

import pytest

from repro.experiments.figures import (
    figure2_star_graph,
    figure3_mesh,
    figure4_example_embedding,
    figure5_6_conversions,
    figure7_mapping_table,
    table1_exchange_sequences,
)
from repro.experiments.figures.figure7_mapping_table import PAPER_FIGURE7


class TestFigure2:
    def test_claim_holds(self):
        result = figure2_star_graph.run()
        result.assert_claim()
        assert result.summary["nodes"] == 24
        assert result.summary["edges"] == 36
        assert result.summary["diameter_measured"] == 4

    def test_one_row_per_node(self):
        result = figure2_star_graph.run()
        assert len(result.rows) == 24
        assert all(row[2] == 3 for row in result.rows)

    def test_other_degree(self):
        result = figure2_star_graph.run(n=3)
        result.assert_claim()
        assert result.summary["nodes"] == 6


class TestFigure3:
    def test_claim_holds(self):
        result = figure3_mesh.run()
        result.assert_claim()
        assert result.summary["nodes"] == 24
        assert result.summary["edges_formula"] == 46
        assert result.summary["diameter"] == 6

    def test_degree_range(self):
        result = figure3_mesh.run()
        assert result.summary["min_degree"] == 3
        assert result.summary["max_degree"] == 5


class TestFigure4:
    def test_claim_holds(self):
        result = figure4_example_embedding.run()
        result.assert_claim()
        assert result.summary["expansion"] == 1.0
        assert result.summary["dilation"] == 2
        assert result.summary["congestion"] == 2

    def test_four_guest_edges(self):
        assert len(figure4_example_embedding.run().rows) == 4


class TestFigure5and6:
    def test_claim_holds(self):
        result = figure5_6_conversions.run()
        result.assert_claim()
        assert result.summary["convert_d_s((3,0,1))"] == "0 3 1 2"
        assert result.summary["convert_s_d((0 2 1 3))"] == "(3, 1, 1)"

    def test_traces_include_paper_intermediates(self):
        result = figure5_6_conversions.run()
        arrangements = [row[3] for row in result.rows]
        # The forward example passes through (2 3 0 1) and (1 3 0 2).
        assert "2 3 0 1" in arrangements
        assert "1 3 0 2" in arrangements
        # The inverse example passes through (3 1 0 2) and (3 2 0 1).
        assert "3 1 0 2" in arrangements
        assert "3 2 0 1" in arrangements


class TestFigure7:
    def test_claim_holds(self):
        result = figure7_mapping_table.run()
        result.assert_claim()
        assert result.summary["mismatches"] == 0
        assert result.summary["bijection"] is True

    def test_24_rows_all_ok(self):
        result = figure7_mapping_table.run()
        assert len(result.rows) == 24
        assert all(row[3] == "ok" for row in result.rows)

    def test_paper_table_is_itself_a_bijection(self):
        assert len(set(PAPER_FIGURE7.values())) == 24


class TestTable1:
    def test_claim_holds(self):
        result = table1_exchange_sequences.run()
        result.assert_claim()

    def test_row_lengths(self):
        result = table1_exchange_sequences.run(n=5)
        assert [row[0] for row in result.rows] == [1, 2, 3, 4]
        assert all(row[2] == row[0] for row in result.rows)

"""Tests for the experiment result container, table rendering, registry and CLI."""

import json

import pytest

from repro.exceptions import InvalidParameterError
from repro.experiments.cli import build_parser, main
from repro.experiments.registry import (
    EXPERIMENTS,
    PROFILES,
    ExperimentSpec,
    get_experiment,
    get_spec,
    list_experiments,
    run_experiment,
)
from repro.experiments.report import ExperimentResult, format_table, json_safe, render_result


class TestFormatTable:
    def test_column_alignment(self):
        table = format_table(["a", "bbb"], [[1, 2], [333, 4]])
        lines = table.splitlines()
        assert lines[0].startswith("a")
        assert "---" in lines[1]
        assert len(lines) == 4

    def test_float_formatting(self):
        table = format_table(["x"], [[1.23456], [1e-7], [2.5e9], [0.0]])
        assert "1.235" in table
        assert "1.000e-07" in table
        assert "2.500e+09" in table

    def test_empty_rows(self):
        assert format_table(["only", "headers"], []).count("\n") == 1


class TestExperimentResult:
    def test_assert_claim_passes(self):
        result = ExperimentResult("X", "t", ["h"], [[1]], summary={"claim_holds": True})
        result.assert_claim()

    def test_assert_claim_fails(self):
        result = ExperimentResult("X", "t", ["h"], [[1]], summary={"claim_holds": False})
        with pytest.raises(AssertionError):
            result.assert_claim()

    def test_assert_claim_fails_when_missing(self):
        result = ExperimentResult("X", "t", ["h"], [[1]])
        with pytest.raises(AssertionError):
            result.assert_claim()

    def test_render_contains_sections(self):
        result = ExperimentResult(
            "FIGX",
            "a title",
            ["col"],
            [[42]],
            notes=["a note"],
            summary={"claim_holds": True, "value": 7},
        )
        text = render_result(result)
        assert "[FIGX] a title" in text
        assert "42" in text
        assert "claim_holds: True" in text
        assert "note: a note" in text


class TestRegistry:
    def test_twenty_four_experiments_registered(self):
        assert len(EXPERIMENTS) == 24
        assert set(list_experiments()) == set(EXPERIMENTS)

    def test_specs_have_titles_and_matching_ids(self):
        for experiment_id, spec in EXPERIMENTS.items():
            assert isinstance(spec, ExperimentSpec)
            assert spec.experiment_id == experiment_id
            assert spec.title and not spec.title.startswith("exp_")

    def test_get_experiment_case_insensitive(self):
        assert get_experiment("fig7") is EXPERIMENTS["FIG7"].run
        assert get_spec("fig7") is EXPERIMENTS["FIG7"]

    def test_get_experiment_unknown(self):
        with pytest.raises(InvalidParameterError):
            get_experiment("NOPE")

    def test_profiles_resolve(self):
        spec = get_spec("THM4")
        assert spec.params("default") == {}
        assert spec.params("fast") == {"degrees": (3, 4, 5)}
        with pytest.raises(InvalidParameterError):
            spec.params("warp")
        assert set(spec.profiles) <= set(PROFILES)

    def test_run_experiment_by_id(self):
        result = run_experiment("FIG4")
        assert result.experiment_id == "FIG4"
        result.assert_claim()

    def test_run_experiment_profile_and_overrides(self):
        result = run_experiment("LEM1", profile="fast")
        assert result.rows[-1][0] == 6  # fast profile caps max_n at 6
        result = run_experiment("LEM1", profile="fast", max_n=4)
        assert result.rows[-1][0] == 4  # explicit kwargs win over the profile

    def test_experiment_ids_match_result_ids(self):
        # Spot-check a few cheap ones; ids in results must match registry keys
        # (FIG5 covers Figures 5 and 6 together).
        for experiment_id in ("FIG2", "FIG3", "TAB1"):
            assert run_experiment(experiment_id).experiment_id == experiment_id


class TestCli:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_command_prints_titles(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "FIG7" in output and "THM4" in output
        assert "Figure 7: mapping of V(D_4) into V(S_4)" in output
        assert "Theorem 4" in output

    def test_list_json_catalogue(self, capsys):
        assert main(["list", "--json"]) == 0
        catalogue = json.loads(capsys.readouterr().out)
        assert [entry["experiment_id"] for entry in catalogue] == list_experiments()
        by_id = {entry["experiment_id"]: entry for entry in catalogue}
        assert by_id["THM4"]["title"].startswith("Theorem 4")
        assert by_id["THM4"]["profiles"] == ["default", "fast", "heavy"]
        # FIG4 has no named overrides: only the default profile is listed.
        assert by_id["FIG4"]["profiles"] == ["default"]
        for entry in catalogue:
            assert entry["profiles"][0] == "default"
            assert set(entry["profiles"]) <= set(PROFILES)

    def test_run_network_family_fast(self, capsys):
        assert main(["run", "network-family", "--fast"]) == 0
        output = capsys.readouterr().out
        # Comparison rows for all four networks at the fast degrees.
        for network in ("S_4", "P_4", "B_4", "Q_3", "S_5", "P_5", "B_5", "Q_4"):
            assert network in output
        assert "claim_holds: True" in output

    def test_run_single_experiment(self, capsys):
        assert main(["run", "FIG4"]) == 0
        output = capsys.readouterr().out
        assert "Figure 4" in output
        assert "claim_holds: True" in output

    def test_run_fast_subset(self, capsys):
        assert main(["run", "LEM1", "TAB1", "--fast"]) == 0
        output = capsys.readouterr().out
        assert "Lemma 1" in output and "Table 1" in output

    def test_profile_flag_matches_fast(self, capsys):
        assert main(["run", "LEM1", "--profile", "fast"]) == 0
        with_profile = capsys.readouterr().out
        assert main(["run", "LEM1", "--fast"]) == 0
        with_shorthand = capsys.readouterr().out
        assert with_profile == with_shorthand

    def test_fast_conflicts_with_other_profile(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "LEM1", "--fast", "--profile", "heavy"])

    def test_json_artifact_file(self, tmp_path, capsys):
        out = tmp_path / "results.json"
        assert main(["run", "LEM1", "TAB1", "--fast", "--json", str(out)]) == 0
        artifacts = json.loads(out.read_text())
        assert [a["experiment_id"] for a in artifacts] == ["LEM1", "TAB1"]
        for artifact in artifacts:
            assert artifact["profile"] == "fast"
            assert artifact["summary"]["claim_holds"] is True
            assert artifact["headers"] and artifact["rows"]
        assert artifacts[0]["params"] == {"max_n": 6}

    def test_json_to_stdout_replaces_tables(self, capsys):
        assert main(["run", "FIG4", "--json", "-"]) == 0
        output = capsys.readouterr().out
        artifacts = json.loads(output)
        assert artifacts[0]["experiment_id"] == "FIG4"

    def test_run_all_fast_smoke(self, tmp_path):
        """The CLI smoke test: every experiment passes at the fast profile."""
        out = tmp_path / "all.json"
        assert main(["run", "all", "--fast", "--json", str(out)]) == 0
        artifacts = json.loads(out.read_text())
        assert len(artifacts) == len(EXPERIMENTS)
        assert all(a["summary"].get("claim_holds", True) for a in artifacts)

    def test_run_unknown_experiment_exits_2_readably(self, capsys):
        """Library errors become one readable stderr line, not a traceback."""
        assert main(["run", "UNKNOWN"]) == 2
        err = capsys.readouterr().err
        assert "repro-star: error:" in err
        assert "unknown experiment 'UNKNOWN'" in err


class TestCliSharded:
    """CLI-level tests of --jobs / --out / --force and the report subcommand."""

    def test_jobs_2_json_identical_to_serial(self, tmp_path):
        """Acceptance: `run all --jobs 2` rows equal the serial rows exactly."""
        serial = tmp_path / "serial.json"
        sharded = tmp_path / "sharded.json"
        assert main(["run", "all", "--fast", "--json", str(serial)]) == 0
        assert main(["run", "all", "--fast", "--jobs", "2", "--json", str(sharded)]) == 0
        assert serial.read_text() == sharded.read_text()

    def test_out_store_populated_and_resumable(self, tmp_path, capsys):
        store = tmp_path / "results"
        args = ["run", "LEM1", "TAB1", "--fast", "--out", str(store)]
        assert main(args) == 0
        err = capsys.readouterr().err
        assert "2 ran, 0 cached" in err
        files = sorted(p.name for p in store.glob("*.json"))
        assert len(files) == 2 and files[0].startswith("LEM1__fast__")
        # Second run: all shards cache-hit, artifacts untouched.
        before = {p.name: p.read_text() for p in store.glob("*.json")}
        assert main(args) == 0
        err = capsys.readouterr().err
        assert "0 ran, 2 cached" in err
        assert {p.name: p.read_text() for p in store.glob("*.json")} == before

    def test_force_reruns(self, tmp_path, capsys):
        store = tmp_path / "results"
        assert main(["run", "FIG4", "--out", str(store)]) == 0
        capsys.readouterr()
        assert main(["run", "FIG4", "--out", str(store), "--force"]) == 0
        assert "1 ran, 0 cached" in capsys.readouterr().err

    def test_force_without_out_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "FIG4", "--force"])

    def test_bad_jobs_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "FIG4", "--jobs", "0"])

    def test_out_with_json_aggregate_matches_serial(self, tmp_path, capsys):
        store = tmp_path / "results"
        out = tmp_path / "agg.json"
        assert main(
            ["run", "LEM1", "TAB1", "--fast", "--jobs", "2", "--out", str(store), "--json", str(out)]
        ) == 0
        capsys.readouterr()
        serial = tmp_path / "serial.json"
        assert main(["run", "LEM1", "TAB1", "--fast", "--json", str(serial)]) == 0
        assert out.read_text() == serial.read_text()

    def test_report_markdown_to_stdout(self, tmp_path, capsys):
        store = tmp_path / "results"
        assert main(["run", "LEM1", "TAB1", "--fast", "--out", str(store)]) == 0
        capsys.readouterr()
        assert main(["report", str(store)]) == 0
        output = capsys.readouterr().out
        assert output.startswith("# Experiment results")
        assert "[TAB1]" in output and "[LEM1]" in output
        # Registry presentation order: TAB1 (a figure) before LEM1 (a claim).
        assert output.index("[TAB1]") < output.index("[LEM1]")

    def test_report_writes_md_and_html(self, tmp_path, capsys):
        store = tmp_path / "results"
        assert main(["run", "FIG4", "--out", str(store)]) == 0
        md = tmp_path / "report.md"
        html = tmp_path / "report.html"
        assert main(["report", str(store), "--md", str(md), "--html", str(html), "--title", "T"]) == 0
        assert md.read_text().startswith("# T")
        assert html.read_text().startswith("<!DOCTYPE html>")

    def test_serial_tables_stream_in_order_with_partial_cache(self, tmp_path, capsys):
        """jobs=1 prints each table as its shard resolves, in request order,
        even when the store already holds a subset."""
        store = tmp_path / "results"
        assert main(["run", "TAB1", "--fast", "--out", str(store)]) == 0
        capsys.readouterr()
        assert main(["run", "LEM1", "TAB1", "FIG4", "--fast", "--out", str(store)]) == 0
        out = capsys.readouterr().out
        assert out.index("[LEM1]") < out.index("[TAB1]") < out.index("[FIG4]")

    def test_report_empty_store_exits_2_readably(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nothing")]) == 2
        err = capsys.readouterr().err
        assert "repro-star: error:" in err and "no artifacts found" in err


class TestJsonSafe:
    def test_plain_types_pass_through(self):
        assert json_safe({"a": (1, 2.5, "x", None, True)}) == {"a": [1, 2.5, "x", None, True]}

    def test_numpy_scalars_unwrap(self):
        numpy = pytest.importorskip("numpy")
        assert json_safe(numpy.int64(7)) == 7
        assert json_safe([numpy.float64(0.5)]) == [0.5]

    def test_objects_fall_back_to_str(self):
        class Odd:
            def __repr__(self):
                return "odd!"

        assert json_safe(Odd()) == "odd!"

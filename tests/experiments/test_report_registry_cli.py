"""Tests for the experiment result container, table rendering, registry and CLI."""

import pytest

from repro.exceptions import InvalidParameterError
from repro.experiments.cli import build_parser, main
from repro.experiments.registry import EXPERIMENTS, get_experiment, list_experiments, run_experiment
from repro.experiments.report import ExperimentResult, format_table, render_result


class TestFormatTable:
    def test_column_alignment(self):
        table = format_table(["a", "bbb"], [[1, 2], [333, 4]])
        lines = table.splitlines()
        assert lines[0].startswith("a")
        assert "---" in lines[1]
        assert len(lines) == 4

    def test_float_formatting(self):
        table = format_table(["x"], [[1.23456], [1e-7], [2.5e9], [0.0]])
        assert "1.235" in table
        assert "1.000e-07" in table
        assert "2.500e+09" in table

    def test_empty_rows(self):
        assert format_table(["only", "headers"], []).count("\n") == 1


class TestExperimentResult:
    def test_assert_claim_passes(self):
        result = ExperimentResult("X", "t", ["h"], [[1]], summary={"claim_holds": True})
        result.assert_claim()

    def test_assert_claim_fails(self):
        result = ExperimentResult("X", "t", ["h"], [[1]], summary={"claim_holds": False})
        with pytest.raises(AssertionError):
            result.assert_claim()

    def test_assert_claim_fails_when_missing(self):
        result = ExperimentResult("X", "t", ["h"], [[1]])
        with pytest.raises(AssertionError):
            result.assert_claim()

    def test_render_contains_sections(self):
        result = ExperimentResult(
            "FIGX",
            "a title",
            ["col"],
            [[42]],
            notes=["a note"],
            summary={"claim_holds": True, "value": 7},
        )
        text = render_result(result)
        assert "[FIGX] a title" in text
        assert "42" in text
        assert "claim_holds: True" in text
        assert "note: a note" in text


class TestRegistry:
    def test_sixteen_experiments_registered(self):
        assert len(EXPERIMENTS) == 16
        assert set(list_experiments()) == set(EXPERIMENTS)

    def test_get_experiment_case_insensitive(self):
        assert get_experiment("fig7") is EXPERIMENTS["FIG7"]

    def test_get_experiment_unknown(self):
        with pytest.raises(InvalidParameterError):
            get_experiment("NOPE")

    def test_run_experiment_by_id(self):
        result = run_experiment("FIG4")
        assert result.experiment_id == "FIG4"
        result.assert_claim()

    def test_experiment_ids_match_result_ids(self):
        # Spot-check a few cheap ones; ids in results must match registry keys
        # (FIG5 covers Figures 5 and 6 together).
        for experiment_id in ("FIG2", "FIG3", "TAB1"):
            assert run_experiment(experiment_id).experiment_id == experiment_id


class TestCli:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "FIG7" in output and "THM4" in output

    def test_run_single_experiment(self, capsys):
        assert main(["run", "FIG4"]) == 0
        output = capsys.readouterr().out
        assert "Figure 4" in output
        assert "claim_holds: True" in output

    def test_run_fast_subset(self, capsys):
        assert main(["run", "LEM1", "TAB1", "--fast"]) == 0
        output = capsys.readouterr().out
        assert "Lemma 1" in output and "Table 1" in output

    def test_run_unknown_experiment_raises(self):
        with pytest.raises(InvalidParameterError):
            main(["run", "UNKNOWN"])

"""Degree-10 feasibility (ISSUE 7 acceptance): gated behind REPRO_HEAVY_TESTS.

The streamed kernels must make S_10 (3,628,800 nodes) routine: the full
closed-form distance sweep completes in a bounded-memory subprocess with
peak RSS well under 2 GB, and its aggregates match the closed forms.
``REPRO_HEAVY_TESTS=1 pytest tests/integration/test_degree10_tables.py``
runs it (~15 s); the plain tier-1 run skips it.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

pytestmark = pytest.mark.skipif(
    not os.environ.get("REPRO_HEAVY_TESTS"),
    reason="3.6M-node sweep takes ~15 s; set REPRO_HEAVY_TESTS=1",
)

_SWEEP_SCRIPT = """
import resource, sys
import numpy as np
from repro.topology.routing import star_distances_from

distances = np.asarray(star_distances_from(tuple(range(9, -1, -1))))
assert distances.size == 3628800
assert int(distances.max()) == 13          # diameter floor(3 * 9 / 2)
assert int((distances == 0).sum()) == 1    # exactly the origin
assert int(distances.min()) == 0
peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
print(peak_kb)
"""


def test_s10_distance_sweep_bounded_memory():
    src = str(Path(__file__).resolve().parents[2] / "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )
    completed = subprocess.run(
        [sys.executable, "-c", _SWEEP_SCRIPT],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    peak_mib = int(completed.stdout.strip()) / 1024
    assert peak_mib < 2048, f"S_10 sweep peaked at {peak_mib:.0f} MiB (bound: 2 GiB)"

"""Degree-9 feasibility (ISSUE 2 acceptance): gated behind REPRO_HEAVY_TESTS.

The compiled route programs make the full sorting experiment feasible at
``n = 9`` (362 880 PEs): the embedded line sort with exact mesh-ledger parity
against the native mesh machine, and the full 2-D shearsort on the Appendix
factorisation.  Together they take a few minutes, so the plain test run skips
them; ``REPRO_HEAVY_TESTS=1 pytest tests/integration/test_degree9_programs.py``
reproduces the numbers recorded in CHANGES.md (embedded line sort ~40 s,
shearsort ~65 s on the reference container).
"""

import math
import os
import random

import pytest

from repro.algorithms.sorting import (
    odd_even_transposition_sort,
    shearsort_2d,
    snake_order_rank,
)
from repro.embedding.uniform import factorise_paper_mesh
from repro.simd.embedded import EmbeddedMeshMachine
from repro.simd.mesh_machine import MeshMachine
from repro.topology.mesh import paper_mesh

pytestmark = pytest.mark.skipif(
    not os.environ.get("REPRO_HEAVY_TESTS"),
    reason="degree-9 workloads take minutes; set REPRO_HEAVY_TESTS=1",
)

N = 9


def test_embedded_line_sort_degree9_ledger_parity():
    sides = paper_mesh(N).sides
    rng = random.Random(7)
    data = {node: rng.randint(0, 1000) for node in paper_mesh(N).nodes()}

    native = MeshMachine(sides)
    embedded = EmbeddedMeshMachine(N)
    for machine in (native, embedded):
        machine.define_register("K", dict(data))
        routes = odd_even_transposition_sort(machine, "K", dim=0)
        assert routes == 2 * sides[0]

    assert native.read_register("K") == embedded.read_register("K")
    native_ledger = native.stats.snapshot()
    embedded_ledger = embedded.stats.snapshot()
    # Mesh-level accounting matches the native machine exactly (broadcast
    # counts differ by design: register fills land on the star ledger).
    for key in ("unit_routes", "messages", "local_operations",
                "label:dim0+", "label:dim0-"):
        assert native_ledger[key] == embedded_ledger[key]
    assert embedded.star_stats.unit_routes <= 3 * embedded.stats.unit_routes


def test_full_shearsort_degree9():
    rows, cols = factorise_paper_mesh(N, 2)
    machine = MeshMachine((rows, cols))
    rng = random.Random(7)
    data = {node: rng.randint(0, 10_000) for node in machine.mesh.nodes()}
    machine.define_register("K", data)
    routes = shearsort_2d(machine, "K")
    out = machine.read_register("K")
    ordered = [
        out[node]
        for node in sorted(
            machine.mesh.nodes(), key=lambda nd: snake_order_rank(nd, (rows, cols))
        )
    ]
    assert ordered == sorted(data.values())
    bound = (math.ceil(math.log2(rows)) + 1) * 2 * (rows + cols) + 2 * cols
    assert routes <= bound
    assert machine.stats.unit_routes == routes

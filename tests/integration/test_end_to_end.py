"""Integration tests spanning the whole stack.

These exercise realistic end-to-end scenarios: a numerical mesh workload
(Jacobi-style smoothing) run natively and through the embedding, a full
sort-of-all-keys pipeline on the Appendix 2-D reshape, fault-injection on the
embedded machine's conflict checker, and the public API surface promised by
the README quickstart.
"""

import random

import pytest

import repro
from repro.algorithms.broadcast import mesh_broadcast
from repro.algorithms.reduction import mesh_allreduce
from repro.algorithms.scan import prefix_sum_dimension
from repro.algorithms.sorting import shearsort_2d, snake_order_rank
from repro.embedding.metrics import measure_embedding
from repro.embedding.uniform import factorise_paper_mesh
from repro.exceptions import RouteConflictError
from repro.simd.embedded import EmbeddedMeshMachine
from repro.simd.mesh_machine import MeshMachine


class TestPublicApi:
    def test_readme_quickstart(self):
        embedding = repro.MeshToStarEmbedding(4)
        assert embedding.map_node((3, 0, 1)) == (0, 3, 1, 2)
        assert repro.convert_s_d((0, 3, 1, 2)) == (3, 0, 1)
        metrics = repro.measure_embedding(embedding)
        assert metrics.dilation == 3 and metrics.expansion == 1.0

    def test_version_and_exports(self):
        assert repro.__version__
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_topologies_from_top_level(self):
        assert repro.StarGraph(4).num_nodes == 24
        assert repro.paper_mesh(4).num_nodes == 24
        assert repro.Hypercube(5).num_nodes == 32


class TestJacobiSmoothingWorkload:
    """A stencil relaxation: each PE repeatedly averages with its mesh neighbours.

    This is the kind of numerical-analysis workload the introduction motivates
    the embedding with; running it on the embedded machine checks Theorem 6 on
    a long mixed program (routes in every dimension and direction).
    """

    @staticmethod
    def run_smoothing(machine, iterations=2):
        mesh = machine.mesh
        machine.define_register("u", lambda node: float(node[0] * 7 + node[1] * 3))
        for _ in range(iterations):
            machine.define_register("acc", 0.0)
            machine.define_register("cnt", 0)
            for dim in range(mesh.ndim):
                for delta in (+1, -1):
                    machine.define_register("nbr", None)
                    machine.route_dimension("u", "nbr", dim, delta)
                    machine.apply(
                        "acc",
                        lambda acc, nbr: acc + (nbr if nbr is not None else 0.0),
                        "acc",
                        "nbr",
                    )
                    machine.apply(
                        "cnt",
                        lambda cnt, nbr: cnt + (1 if nbr is not None else 0),
                        "cnt",
                        "nbr",
                    )
            machine.apply("u", lambda acc, cnt: acc / cnt, "acc", "cnt")
        return machine.read_register("u")

    def test_embedded_matches_native(self):
        native = MeshMachine((4, 3, 2))
        embedded = EmbeddedMeshMachine(4)
        result_native = self.run_smoothing(native)
        result_embedded = self.run_smoothing(embedded)
        assert result_native == result_embedded
        assert embedded.star_stats.unit_routes <= 3 * embedded.stats.unit_routes

    def test_smoothing_contracts_toward_the_mean(self):
        native = MeshMachine((4, 3, 2))
        values = self.run_smoothing(native, iterations=4).values()
        assert max(values) - min(values) < 27  # initial spread is 21+6 = 27


class TestFullSortPipeline:
    def test_sort_all_keys_of_d5_via_appendix_reshape(self):
        # n! = 120 keys, reshaped into the Appendix 2-D mesh 15 x 8 and shearsorted.
        rows, cols = factorise_paper_mesh(5, 2)
        machine = MeshMachine((rows, cols))
        rng = random.Random(42)
        keys = [rng.randint(0, 10**6) for _ in range(rows * cols)]
        machine.define_register(
            "K", {node: keys[machine.mesh.node_index(node)] for node in machine.mesh.nodes()}
        )
        shearsort_2d(machine, "K")
        out = machine.read_register("K")
        ordered = [
            out[node]
            for node in sorted(
                machine.mesh.nodes(), key=lambda nd: snake_order_rank(nd, (rows, cols))
            )
        ]
        assert ordered == sorted(keys)


class TestCollectivePipelines:
    def test_broadcast_then_allreduce_on_embedded_machine(self):
        machine = EmbeddedMeshMachine(4)
        machine.define_register("x", lambda node: node[0])
        mesh_broadcast(machine, (3, 2, 1), "x", result="seed")
        assert set(machine.read_register("seed").values()) == {3}
        total = mesh_allreduce(machine, "seed", lambda a, b: a + b)
        assert total == 3 * 24
        assert machine.star_stats.unit_routes <= 3 * machine.stats.unit_routes

    def test_scan_then_reduce_consistency(self):
        machine = MeshMachine((4, 3, 2))
        machine.define_register("one", 1)
        prefix_sum_dimension(machine, "one", lambda a, b: a + b, dim=0)
        # The scan along the length-4 dimension ends at 4 on the last plane.
        values = machine.read_register("one_scan")
        assert all(values[(3, b, c)] == 4 for b in range(3) for c in range(2))


class TestConflictInjection:
    def test_tampered_paths_raise_route_conflict(self, embedding4):
        """If the unit-route paths are corrupted so two messages share a link,
        the star machine must refuse to execute them (Lemma 5 is checked, not
        assumed)."""
        from repro.embedding.paths import unit_route_paths

        machine = EmbeddedMeshMachine(4, embedding=embedding4)
        machine.define_register("A", 1)
        paths = unit_route_paths(embedding4, dimension=2, delta=+1)
        star_paths = {embedding4.map_node(src): path for src, path in paths.items()}
        sources = list(star_paths)
        # Redirect one path to start at a different source that already sends:
        victim, other = sources[0], sources[1]
        star_paths[other] = [other] + star_paths[victim][1:]
        with pytest.raises(RouteConflictError):
            machine.star_machine.route_paths("A", "B", star_paths)

    def test_untampered_paths_execute_cleanly(self, embedding4):
        machine = EmbeddedMeshMachine(4, embedding=embedding4)
        machine.define_register("A", 1)
        for dimension in range(3):
            for delta in (+1, -1):
                machine.route_dimension("A", "B", dimension, delta)


class TestExperimentsEndToEnd:
    def test_full_registry_runs_and_all_claims_hold(self):
        from repro.experiments.registry import list_experiments, run_experiment

        for experiment_id in list_experiments():
            result = run_experiment(experiment_id, profile="fast")
            result.assert_claim()

"""Unit tests for repro.permutations.generators (star generator moves, Lemma 2 paths)."""

from itertools import combinations, permutations as itertools_permutations

import pytest

from repro.exceptions import InvalidParameterError
from repro.permutations.generators import (
    apply_star_generator,
    star_generator,
    star_neighbors,
    transposition_to_star_routes,
)
from repro.permutations.permutation import swap_symbols


class TestStarGenerator:
    def test_generator_swaps_front_with_j(self):
        assert star_generator(4, 1) == (1, 0, 2, 3)
        assert star_generator(4, 3) == (3, 1, 2, 0)

    def test_generator_index_bounds(self):
        with pytest.raises(InvalidParameterError):
            star_generator(4, 0)
        with pytest.raises(InvalidParameterError):
            star_generator(4, 4)

    def test_degree_bound(self):
        with pytest.raises(InvalidParameterError):
            star_generator(1, 1)


class TestApplyStarGenerator:
    def test_matches_paper_connection_rule(self):
        # pi = (a_{n-1} ... a_0); generator j exchanges tuple positions 0 and j.
        node = (3, 2, 1, 0)
        assert apply_star_generator(node, 1) == (2, 3, 1, 0)
        assert apply_star_generator(node, 3) == (0, 2, 1, 3)

    def test_is_involution(self):
        node = (2, 0, 3, 1)
        for j in range(1, 4):
            assert apply_star_generator(apply_star_generator(node, j), j) == node

    def test_rejects_bad_index(self):
        with pytest.raises(InvalidParameterError):
            apply_star_generator((0, 1, 2), 3)


class TestStarNeighbors:
    def test_count_is_degree(self):
        assert len(star_neighbors((3, 2, 1, 0))) == 3

    def test_all_distinct_and_adjacent(self):
        node = (1, 3, 0, 2)
        neighbors = star_neighbors(node)
        assert len(set(neighbors)) == 3
        for j, neighbor in enumerate(neighbors, start=1):
            assert neighbor == apply_star_generator(node, j)

    def test_neighbors_differ_from_node_in_two_positions(self):
        node = (2, 0, 1, 3)
        for neighbor in star_neighbors(node):
            differing = [i for i in range(4) if node[i] != neighbor[i]]
            assert len(differing) == 2 and 0 in differing

    def test_rejects_degree_one(self):
        with pytest.raises(InvalidParameterError):
            star_neighbors((0,))


class TestTranspositionRoutes:
    def test_front_symbol_gives_single_route(self):
        node = (3, 2, 1, 0)
        path = transposition_to_star_routes(node, 3, 0)
        assert path == [(0, 2, 1, 3)]

    def test_non_front_symbols_give_three_routes(self):
        node = (3, 2, 1, 0)
        path = transposition_to_star_routes(node, 2, 1)
        assert len(path) == 3
        assert path[-1] == swap_symbols(node, 2, 1)

    def test_each_hop_is_a_generator_move(self):
        node = (4, 1, 3, 0, 2)
        path = [node] + transposition_to_star_routes(node, 3, 0)
        for a, b in zip(path, path[1:]):
            differing = [i for i in range(5) if a[i] != b[i]]
            assert len(differing) == 2 and 0 in differing

    def test_every_pair_on_every_s4_node(self):
        for node in itertools_permutations(range(4)):
            for a, b in combinations(range(4), 2):
                path = transposition_to_star_routes(node, a, b)
                assert path[-1] == swap_symbols(node, a, b)
                assert len(path) in (1, 3)
                expected_one = node[0] in (a, b)
                assert (len(path) == 1) == expected_one

    def test_rejects_equal_symbols(self):
        with pytest.raises(InvalidParameterError):
            transposition_to_star_routes((0, 1, 2), 1, 1)

    def test_rejects_missing_symbol(self):
        with pytest.raises(InvalidParameterError):
            transposition_to_star_routes((0, 1, 2), 0, 9)

    def test_rejects_non_permutation(self):
        with pytest.raises(InvalidParameterError):
            transposition_to_star_routes((0, 0, 1), 0, 1)

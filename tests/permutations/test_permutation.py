"""Unit tests for repro.permutations.permutation."""

import random

import pytest

from repro.exceptions import InvalidParameterError, InvalidPermutationError
from repro.permutations.permutation import (
    Permutation,
    identity_permutation,
    is_permutation,
    position_from_left,
    random_permutation,
    swap_positions,
    swap_symbols,
)


class TestIsPermutation:
    def test_valid(self):
        assert is_permutation((0,))
        assert is_permutation((2, 0, 1))
        assert is_permutation(range(6))

    def test_invalid_duplicates(self):
        assert not is_permutation((0, 0, 1))

    def test_invalid_out_of_range(self):
        assert not is_permutation((1, 2, 3))

    def test_invalid_types(self):
        assert not is_permutation((0.0, 1))
        assert not is_permutation((True, 0))
        assert not is_permutation(42)


class TestConstruction:
    def test_stores_tuple(self):
        assert Permutation([2, 0, 1]).values == (2, 0, 1)

    def test_rejects_non_permutation(self):
        with pytest.raises(InvalidPermutationError):
            Permutation((0, 2))

    def test_identity_classmethod(self):
        assert Permutation.identity(4).values == (0, 1, 2, 3)

    def test_identity_rejects_zero(self):
        with pytest.raises(InvalidParameterError):
            Permutation.identity(0)

    def test_from_cycles(self):
        perm = Permutation.from_cycles(4, [(0, 1), (2, 3)])
        assert perm.values == (1, 0, 3, 2)

    def test_from_cycles_three_cycle(self):
        perm = Permutation.from_cycles(3, [(0, 1, 2)])
        assert perm(0) == 1 and perm(1) == 2 and perm(2) == 0

    def test_from_cycles_rejects_overlap(self):
        with pytest.raises(InvalidParameterError):
            Permutation.from_cycles(4, [(0, 1), (1, 2)])

    def test_from_cycles_rejects_out_of_range(self):
        with pytest.raises(InvalidParameterError):
            Permutation.from_cycles(3, [(0, 5)])


class TestContainerBehaviour:
    def test_len_iter_getitem_call(self):
        perm = Permutation((2, 0, 1))
        assert len(perm) == 3
        assert list(perm) == [2, 0, 1]
        assert perm[0] == 2
        assert perm(2) == 1

    def test_equality_with_tuple_and_permutation(self):
        assert Permutation((1, 0)) == (1, 0)
        assert Permutation((1, 0)) == Permutation((1, 0))
        assert Permutation((1, 0)) != Permutation((0, 1))

    def test_hashable(self):
        assert len({Permutation((0, 1)), Permutation((0, 1)), Permutation((1, 0))}) == 2

    def test_repr_and_str(self):
        perm = Permutation((2, 0, 1))
        assert "2, 0, 1" in repr(perm)
        assert str(perm) == "2 0 1"


class TestAlgebra:
    def test_compose_with_identity(self):
        perm = Permutation((2, 0, 1))
        identity = Permutation.identity(3)
        assert perm * identity == perm
        assert identity * perm == perm

    def test_compose_definition(self):
        p = Permutation((1, 2, 0))
        q = Permutation((2, 0, 1))
        composed = p * q
        for i in range(3):
            assert composed(i) == p(q(i))

    def test_compose_rejects_degree_mismatch(self):
        with pytest.raises(InvalidParameterError):
            Permutation((0, 1)) * Permutation((0, 1, 2))

    def test_inverse(self):
        perm = Permutation((3, 0, 2, 1))
        assert (perm * perm.inverse()).is_identity()
        assert (perm.inverse() * perm).is_identity()

    def test_position_of(self):
        perm = Permutation((3, 0, 2, 1))
        for symbol in range(4):
            assert perm[perm.position_of(symbol)] == symbol

    def test_position_of_missing_symbol(self):
        with pytest.raises(InvalidParameterError):
            Permutation((0, 1)).position_of(5)


class TestSwaps:
    def test_swap_positions(self):
        assert Permutation((3, 2, 1, 0)).swap_positions(0, 3).values == (0, 2, 1, 3)

    def test_swap_symbols_matches_paper_definition(self):
        # Paper Definition 1 example: pi = (3 1 4 2 0), pi_(2,3) = (2 1 4 3 0).
        perm = Permutation((3, 1, 4, 2, 0))
        assert perm.swap_symbols(2, 3).values == (2, 1, 4, 3, 0)

    def test_swap_symbols_is_involution(self):
        perm = Permutation((3, 1, 4, 2, 0))
        assert perm.swap_symbols(0, 4).swap_symbols(0, 4) == perm

    def test_module_level_swap_positions_bounds(self):
        with pytest.raises(InvalidParameterError):
            swap_positions((0, 1, 2), 0, 3)

    def test_module_level_swap_symbols_missing(self):
        with pytest.raises(InvalidParameterError):
            swap_symbols((0, 1, 2), 1, 7)


class TestStructure:
    def test_cycles_of_identity_empty(self):
        assert Permutation.identity(4).cycles() == []

    def test_cycles_include_fixed_points_option(self):
        cycles = Permutation((0, 2, 1)).cycles(include_fixed_points=True)
        assert (0,) in cycles and (1, 2) in cycles

    def test_cycles_deterministic_order(self):
        perm = Permutation((1, 0, 3, 2))
        assert perm.cycles() == [(0, 1), (2, 3)]

    def test_fixed_points(self):
        assert Permutation((0, 2, 1, 3)).fixed_points() == (0, 3)

    def test_num_inversions_and_parity(self):
        assert Permutation((0, 1, 2)).num_inversions() == 0
        assert Permutation((2, 1, 0)).num_inversions() == 3
        assert Permutation((1, 0, 2)).parity() == 1
        assert Permutation((1, 2, 0)).parity() == 0

    def test_star_distance_to_identity_transpositions(self):
        # Swap involving position 0: one generator move.
        assert Permutation((1, 0, 2, 3)).star_distance_to_identity() == 1
        # Swap not involving position 0: three moves (Lemma 2).
        assert Permutation((0, 2, 1, 3)).star_distance_to_identity() == 3

    def test_star_distance_reversal_s4(self):
        # (3 2 1 0) relative to identity: cycles (0 3)(1 2) -> (2-1) + (2+1) = 4 = diameter of S_4.
        assert Permutation((3, 2, 1, 0)).star_distance_to_identity() == 4


class TestHelpers:
    def test_identity_permutation(self):
        assert identity_permutation(3) == (0, 1, 2)
        with pytest.raises(InvalidParameterError):
            identity_permutation(0)

    def test_random_permutation_is_valid_and_deterministic_with_rng(self):
        rng1 = random.Random(5)
        rng2 = random.Random(5)
        p1 = random_permutation(8, rng1)
        p2 = random_permutation(8, rng2)
        assert p1 == p2
        assert is_permutation(p1)

    def test_random_permutation_rejects_bad_degree(self):
        with pytest.raises(InvalidParameterError):
            random_permutation(0)

    def test_position_from_left(self):
        # Paper position 0 (rightmost) is the last tuple index.
        assert position_from_left(0, 4) == 3
        assert position_from_left(3, 4) == 0
        with pytest.raises(InvalidParameterError):
            position_from_left(4, 4)

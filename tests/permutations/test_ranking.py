"""Unit tests for repro.permutations.ranking (Lehmer codes and lexicographic ranks)."""

import math
from itertools import permutations as itertools_permutations

import pytest

from repro.exceptions import InvalidParameterError, InvalidPermutationError
from repro.permutations.ranking import (
    all_permutations,
    lehmer_code,
    lehmer_decode,
    permutation_rank,
    permutation_unrank,
)


class TestLehmerCode:
    def test_identity_code_is_zero(self):
        assert lehmer_code((0, 1, 2, 3)) == (0, 0, 0, 0)

    def test_reverse_code(self):
        assert lehmer_code((3, 2, 1, 0)) == (3, 2, 1, 0)

    def test_worked_example(self):
        assert lehmer_code((2, 0, 1)) == (2, 0, 0)

    def test_last_digit_always_zero(self):
        for perm in itertools_permutations(range(5)):
            assert lehmer_code(perm)[-1] == 0

    def test_round_trip(self):
        for perm in itertools_permutations(range(5)):
            assert lehmer_decode(lehmer_code(perm)) == perm

    def test_rejects_non_permutation(self):
        with pytest.raises(InvalidPermutationError):
            lehmer_code((0, 0, 1))

    def test_decode_rejects_out_of_range_digit(self):
        with pytest.raises(InvalidParameterError):
            lehmer_decode((3, 0, 0))  # first digit must be < 3 for degree 3


class TestRankUnrank:
    def test_identity_rank_zero(self):
        assert permutation_rank((0, 1, 2, 3)) == 0

    def test_reverse_has_max_rank(self):
        assert permutation_rank((3, 2, 1, 0)) == math.factorial(4) - 1

    def test_rank_matches_lexicographic_enumeration(self):
        for n in (1, 2, 3, 4, 5):
            for expected_rank, perm in enumerate(itertools_permutations(range(n))):
                assert permutation_rank(perm) == expected_rank

    def test_unrank_round_trip(self):
        n = 6
        for rank in range(0, math.factorial(n), 37):
            assert permutation_rank(permutation_unrank(rank, n)) == rank

    def test_unrank_rejects_out_of_range(self):
        with pytest.raises(InvalidParameterError):
            permutation_unrank(math.factorial(4), 4)
        with pytest.raises(InvalidParameterError):
            permutation_unrank(-1, 4)

    def test_unrank_rejects_non_int(self):
        with pytest.raises(InvalidParameterError):
            permutation_unrank(1.0, 3)

    def test_unrank_rejects_bad_degree(self):
        with pytest.raises(InvalidParameterError):
            permutation_unrank(0, 0)


class TestAllPermutations:
    def test_count(self):
        assert sum(1 for _ in all_permutations(5)) == 120

    def test_order_matches_rank(self):
        for rank, perm in enumerate(all_permutations(4)):
            assert permutation_rank(perm) == rank

    def test_rejects_bad_degree(self):
        with pytest.raises(InvalidParameterError):
            all_permutations(0)

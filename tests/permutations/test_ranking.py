"""Unit tests for repro.permutations.ranking (Lehmer codes and lexicographic ranks)."""

import math
from itertools import permutations as itertools_permutations

import pytest

from repro.exceptions import (
    InvalidParameterError,
    InvalidPermutationError,
    TableDegreeError,
)
from repro.permutations.ranking import (
    MAX_DENSE_DEGREE,
    MAX_TABLE_DEGREE,
    all_permutations,
    all_permutations_array,
    lehmer_code,
    lehmer_decode,
    move_tables,
    move_tables_for,
    permutation_rank,
    permutation_unrank,
    require_table_degree,
    star_position_generators,
    within_table_degree,
)


class TestLehmerCode:
    def test_identity_code_is_zero(self):
        assert lehmer_code((0, 1, 2, 3)) == (0, 0, 0, 0)

    def test_reverse_code(self):
        assert lehmer_code((3, 2, 1, 0)) == (3, 2, 1, 0)

    def test_worked_example(self):
        assert lehmer_code((2, 0, 1)) == (2, 0, 0)

    def test_last_digit_always_zero(self):
        for perm in itertools_permutations(range(5)):
            assert lehmer_code(perm)[-1] == 0

    def test_round_trip(self):
        for perm in itertools_permutations(range(5)):
            assert lehmer_decode(lehmer_code(perm)) == perm

    def test_rejects_non_permutation(self):
        with pytest.raises(InvalidPermutationError):
            lehmer_code((0, 0, 1))

    def test_decode_rejects_out_of_range_digit(self):
        with pytest.raises(InvalidParameterError):
            lehmer_decode((3, 0, 0))  # first digit must be < 3 for degree 3


class TestRankUnrank:
    def test_identity_rank_zero(self):
        assert permutation_rank((0, 1, 2, 3)) == 0

    def test_reverse_has_max_rank(self):
        assert permutation_rank((3, 2, 1, 0)) == math.factorial(4) - 1

    def test_rank_matches_lexicographic_enumeration(self):
        for n in (1, 2, 3, 4, 5):
            for expected_rank, perm in enumerate(itertools_permutations(range(n))):
                assert permutation_rank(perm) == expected_rank

    def test_unrank_round_trip(self):
        n = 6
        for rank in range(0, math.factorial(n), 37):
            assert permutation_rank(permutation_unrank(rank, n)) == rank

    def test_unrank_rejects_out_of_range(self):
        with pytest.raises(InvalidParameterError):
            permutation_unrank(math.factorial(4), 4)
        with pytest.raises(InvalidParameterError):
            permutation_unrank(-1, 4)

    def test_unrank_rejects_non_int(self):
        with pytest.raises(InvalidParameterError):
            permutation_unrank(1.0, 3)

    def test_unrank_rejects_bad_degree(self):
        with pytest.raises(InvalidParameterError):
            permutation_unrank(0, 0)


class TestAllPermutations:
    def test_count(self):
        assert sum(1 for _ in all_permutations(5)) == 120

    def test_order_matches_rank(self):
        for rank, perm in enumerate(all_permutations(4)):
            assert permutation_rank(perm) == rank

    def test_rejects_bad_degree(self):
        with pytest.raises(InvalidParameterError):
            all_permutations(0)


class TestTableDegreeGuard:
    """The unified two-tier table overflow path (one exception type)."""

    def test_tiers_are_ordered(self):
        assert MAX_DENSE_DEGREE < MAX_TABLE_DEGREE

    def test_within_table_degree_boundary(self):
        assert within_table_degree(MAX_TABLE_DEGREE)
        assert not within_table_degree(MAX_TABLE_DEGREE + 1)

    def test_within_dense_degree_boundary(self):
        assert within_table_degree(MAX_DENSE_DEGREE, dense=True)
        assert not within_table_degree(MAX_DENSE_DEGREE + 1, dense=True)
        # The memmap tier covers the dense range too.
        assert within_table_degree(MAX_DENSE_DEGREE + 1)

    def test_require_table_degree_passes_in_range(self):
        require_table_degree(MAX_TABLE_DEGREE)  # must not raise
        require_table_degree(MAX_DENSE_DEGREE, dense=True)

    def test_every_table_entry_point_raises_the_same_error(self):
        over = MAX_TABLE_DEGREE + 1
        messages = set()
        for call in (
            lambda: require_table_degree(over),
            lambda: move_tables(over),
            lambda: move_tables_for(((1, 0) + tuple(range(2, over)),), over),
            lambda: all_permutations_array(over),
        ):
            with pytest.raises(TableDegreeError) as excinfo:
                call()
            messages.add(str(excinfo.value))
        # Above the absolute ceiling every entry point names it identically,
        # and the message points past the dead end: the table-free implicit
        # backend and the sampled estimators.
        assert len(messages) == 1
        (message,) = messages
        assert message.startswith(
            f"per-degree move tables are limited to n <= {MAX_TABLE_DEGREE} "
            f"even memmap-streamed from the on-disk cache, got {over}"
        )
        assert "REPRO_NEIGHBORS=implicit" in message
        assert "repro.simulation.sampling" in message
        assert "SAMPLED-DISTANCE" in message
        # ... including the sampled-campaign remedy added with the S_13+
        # bounded-ball campaigns.
        assert "repro.simulation.sampled_campaign" in message
        assert "SAMPLED-FAULT" in message
        assert "SAMPLED-STRETCH" in message

    def test_dense_tier_message_names_ceiling_and_cache_remedy(self):
        over = MAX_DENSE_DEGREE + 1
        with pytest.raises(TableDegreeError) as excinfo:
            require_table_degree(over, dense=True)
        message = str(excinfo.value)
        assert f"n <= {MAX_DENSE_DEGREE}" in message
        assert "REPRO_TABLE_CACHE" in message
        assert f"repro-star tables build {over}" in message
        # all_permutations_array materialises whole n! arrays: dense tier.
        with pytest.raises(TableDegreeError) as excinfo:
            all_permutations_array(over)
        assert str(excinfo.value) == message

    def test_table_degree_error_is_an_invalid_parameter_error(self):
        # Pre-unification callers caught InvalidParameterError; they still can.
        with pytest.raises(InvalidParameterError):
            require_table_degree(MAX_TABLE_DEGREE + 1)

    def test_require_rejects_degree_zero(self):
        with pytest.raises(InvalidParameterError):
            require_table_degree(0)


class TestMoveTablesFor:
    def test_star_tables_are_the_special_case(self):
        generic = move_tables_for(star_position_generators(5), 5)
        star = move_tables(5)
        assert len(generic) == len(star)
        for a, b in zip(generic, star):
            assert list(map(int, a)) == list(map(int, b))

    def test_cached_per_generator_set(self):
        generators = star_position_generators(4)
        assert move_tables_for(generators, 4) is move_tables_for(generators, 4)

    @pytest.mark.parametrize(
        "generator",
        [
            (0, 2, 1, 3),          # adjacent transposition (bubble-sort style)
            (3, 1, 2, 0),          # non-adjacent transposition
            (1, 0, 3, 2),          # product of two disjoint transpositions
            (3, 2, 1, 0),          # full reversal (pancake r_4)
        ],
    )
    def test_tables_are_fixed_point_free_involutions(self, generator):
        (table,) = move_tables_for((generator,), 4)
        for rank in range(len(table)):
            image = int(table[rank])
            assert image != rank
            assert int(table[image]) == rank

    def test_table_agrees_with_tuple_application(self):
        generator = (2, 1, 0, 3)  # transposition of positions 0 and 2
        (table,) = move_tables_for((generator,), 4)
        for rank, perm in enumerate(all_permutations(4)):
            moved = tuple(perm[p] for p in generator)
            assert int(table[rank]) == permutation_rank(moved)

    def test_rejects_identity_generator(self):
        with pytest.raises(InvalidParameterError):
            move_tables_for(((0, 1, 2),), 3)

    def test_rejects_non_involution(self):
        with pytest.raises(InvalidParameterError):
            move_tables_for(((1, 2, 0),), 3)

    def test_rejects_duplicate_generators(self):
        with pytest.raises(InvalidParameterError):
            move_tables_for(((1, 0, 2), (1, 0, 2)), 3)

    def test_rejects_wrong_degree_generator(self):
        with pytest.raises(InvalidParameterError):
            move_tables_for(((1, 0),), 3)

"""Seeded property fuzz: rank/unrank round trips and implicit-vs-table parity.

The S_13+ sampled campaigns never materialise adjacency: every neighbour
expansion is ``unrank -> apply generator -> rank``
(:func:`repro.permutations.ranking.implicit_neighbor_block`), so the
bounded-ball sweeps are exactly as trustworthy as these two properties:

* ``rank_batch(unrank_batch(ranks, n)) == ranks`` for *any* rank array;
* the implicit block equals the dense move-table lookup for *any* generator
  set, at *any* chunk size.

This suite fuzzes both across degrees 3-10, the four generator families
(star transpositions, pancake prefix reversals, bubble-sort adjacent
exchanges, and a non-path non-star transposition tree) and chunk sizes
{1, 7, 64, 10**9}.  Draws are seeded per (degree, case) so failures replay
deterministically.  Degrees 9-10 ride behind ``REPRO_HEAVY_TESTS=1``; the
tier-1 tier stays within the in-RAM dense-table degrees.
"""

import os

import pytest

np = pytest.importorskip("numpy")

from repro.permutations.ranking import (
    factorials,
    implicit_neighbor_block,
    move_tables_for,
    rank_batch,
    star_position_generators,
    unrank_batch,
)
from repro.simulation.stats import derive_trial_seed
from repro.topology.cayley import (
    prefix_reversal_generators,
    transposition_generators,
)

HEAVY = bool(os.environ.get("REPRO_HEAVY_TESTS"))

TIER1_DEGREES = (3, 4, 5, 6, 7, 8)
HEAVY_DEGREES = (9, 10)
DEGREES = TIER1_DEGREES + (HEAVY_DEGREES if HEAVY else ())

CHUNK_SIZES = (1, 7, 64, 10**9)

SAMPLES = 500


def _tree_pairs(n):
    """A spanning tree on the positions that is neither the star nor the path.

    Position 0 fans out to 1 and 2, and the remaining positions chain off
    position 2 -- a "broom" tree, distinct from both special cases for
    ``n >= 4``.
    """
    pairs = [(0, 1), (0, 2)]
    pairs.extend((k - 1, k) for k in range(3, n))
    return tuple(pairs)


def generator_families(n):
    """``name -> position-permutation generators`` for all four families."""
    families = {
        "star": star_position_generators(n),
        "pancake": prefix_reversal_generators(n),
        "bubble-sort": transposition_generators(
            n, tuple((k, k + 1) for k in range(n - 1))
        ),
    }
    if n >= 4:
        families["tree"] = transposition_generators(n, _tree_pairs(n))
    return families


def _fuzz_ranks(n, case):
    """A seeded rank draw covering the extremes and the bulk of ``[0, n!)``."""
    num_nodes = factorials(n)[n]
    rng = np.random.default_rng(derive_trial_seed(4242, "roundtrip-fuzz", n, case))
    bulk = rng.integers(0, num_nodes, size=SAMPLES, dtype=np.int64)
    edges = np.asarray([0, 1, num_nodes - 2, num_nodes - 1], dtype=np.int64)
    return np.concatenate([edges, bulk])


class TestRankUnrankRoundTrip:
    @pytest.mark.parametrize("n", DEGREES)
    def test_rank_of_unrank_is_identity(self, n):
        ranks = _fuzz_ranks(n, "rank-roundtrip")
        rows = unrank_batch(ranks, n)
        assert np.array_equal(np.asarray(rank_batch(rows)), ranks)

    @pytest.mark.parametrize("n", TIER1_DEGREES[:4])
    def test_unrank_enumerates_distinct_valid_rows(self, n):
        # Exhaustive at tiny degrees: every rank yields a valid permutation
        # row and no two ranks collide.
        num_nodes = factorials(n)[n]
        rows = np.asarray(unrank_batch(np.arange(num_nodes, dtype=np.int64), n))
        assert rows.shape == (num_nodes, n)
        assert np.array_equal(np.sort(rows, axis=1), np.tile(np.arange(n), (num_nodes, 1)))
        assert len({tuple(map(int, row)) for row in rows}) == num_nodes


class TestImplicitVsTableParity:
    @pytest.mark.parametrize("n", DEGREES)
    def test_implicit_block_matches_table_lookup_all_families(self, n):
        ranks = _fuzz_ranks(n, "implicit-parity")
        for family, generators in generator_families(n).items():
            tables = np.stack(
                [np.asarray(table) for table in move_tables_for(generators, n)],
                axis=1,
            )
            expected = tables[ranks]
            implicit = np.asarray(
                implicit_neighbor_block(ranks, generators, n)
            )
            assert np.array_equal(implicit, expected), (family, n)

    @pytest.mark.parametrize("chunk", CHUNK_SIZES)
    def test_every_chunk_size_is_bit_identical(self, chunk):
        n = 7
        ranks = _fuzz_ranks(n, f"chunk-{chunk}")
        for family, generators in generator_families(n).items():
            reference = np.asarray(
                implicit_neighbor_block(ranks, generators, n, chunk_nodes=10**9)
            )
            chunked = np.asarray(
                implicit_neighbor_block(ranks, generators, n, chunk_nodes=chunk)
            )
            assert np.array_equal(chunked, reference), (family, chunk)

    @pytest.mark.parametrize("n", DEGREES)
    def test_neighbor_rows_are_involutions(self, n):
        # Every generator is an involution, so applying the implicit block
        # twice along each generator column returns the original ranks.
        ranks = _fuzz_ranks(n, "involution")
        for family, generators in generator_families(n).items():
            neighbors = np.asarray(implicit_neighbor_block(ranks, generators, n))
            for column in range(neighbors.shape[1]):
                back = np.asarray(
                    implicit_neighbor_block(neighbors[:, column], generators, n)
                )
                assert np.array_equal(back[:, column], ranks), (family, column)

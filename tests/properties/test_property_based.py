"""Property-based tests (hypothesis) for the core data structures and invariants.

These cover the library's load-bearing bijections and metric properties on
randomly drawn instances, complementing the exhaustive small-degree checks in
the unit tests:

* Lehmer ranking is a bijection and order-preserving;
* CONVERT-D-S / CONVERT-S-D are mutually inverse bijections for arbitrary
  degrees and coordinates (Theorem 4's vertex map, expansion 1);
* star-graph distance is a metric, bounded by the diameter, invariant under
  relabelling, and agrees with the greedy route length (Lemma 2's ingredients);
* mixed-radix encode/decode round-trips;
* transposition paths always have length 1 or 3 and land on the transposed
  permutation (Lemma 2);
* mesh edges always map to host paths of length 1 or 3 whose endpoints are the
  mapped endpoints (Theorem 4).
"""

import math

from hypothesis import assume, given, settings, strategies as st

from repro.embedding.mesh_to_star import convert_d_s, convert_s_d
from repro.embedding.paths import transposition_path
from repro.permutations.generators import star_neighbors
from repro.permutations.permutation import Permutation, swap_symbols
from repro.permutations.ranking import permutation_rank, permutation_unrank
from repro.topology.routing import star_distance, star_route
from repro.utils.mixed_radix import MixedRadix


# --------------------------------------------------------------------- strategies
def permutations_of_degree(min_degree=2, max_degree=8):
    """Random permutations as tuples, degree drawn from [min_degree, max_degree]."""
    return st.integers(min_degree, max_degree).flatmap(
        lambda n: st.permutations(list(range(n))).map(tuple)
    )


def mesh_coordinates(min_degree=2, max_degree=8):
    """Random (n, coords) pairs with coords a valid D_n node."""
    return st.integers(min_degree, max_degree).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.tuples(*[st.integers(0, n - 1 - i) for i in range(n - 1)]),
        )
    )


# ----------------------------------------------------------------------- ranking
class TestRankingProperties:
    @given(perm=permutations_of_degree())
    def test_rank_unrank_round_trip(self, perm):
        assert permutation_unrank(permutation_rank(perm), len(perm)) == perm

    @given(n=st.integers(2, 7), rank=st.integers(0, 100))
    def test_unrank_rank_round_trip(self, n, rank):
        assume(rank < math.factorial(n))
        assert permutation_rank(permutation_unrank(rank, n)) == rank

    @given(perm=permutations_of_degree())
    def test_rank_in_range(self, perm):
        assert 0 <= permutation_rank(perm) < math.factorial(len(perm))


# ------------------------------------------------------------------- permutations
class TestPermutationAlgebraProperties:
    @given(perm=permutations_of_degree())
    def test_inverse_composes_to_identity(self, perm):
        p = Permutation(perm)
        assert (p * p.inverse()).is_identity()

    @given(perm=permutations_of_degree())
    def test_cycles_partition_non_fixed_points(self, perm):
        p = Permutation(perm)
        in_cycles = sorted(x for cycle in p.cycles() for x in cycle)
        non_fixed = sorted(i for i in range(len(perm)) if perm[i] != i)
        assert in_cycles == non_fixed

    @given(perm=permutations_of_degree(), data=st.data())
    def test_swap_symbols_is_an_involution(self, perm, data):
        n = len(perm)
        a = data.draw(st.integers(0, n - 1))
        b = data.draw(st.integers(0, n - 1))
        assume(a != b)
        assert swap_symbols(swap_symbols(perm, a, b), a, b) == perm


# --------------------------------------------------------------------- mixed radix
class TestMixedRadixProperties:
    @given(
        radices=st.lists(st.integers(1, 6), min_size=1, max_size=6).map(tuple),
        data=st.data(),
    )
    def test_encode_decode_round_trip(self, radices, data):
        mr = MixedRadix(radices)
        value = data.draw(st.integers(0, mr.size - 1))
        assert mr.encode(mr.decode(value)) == value

    @given(radices=st.lists(st.integers(1, 5), min_size=1, max_size=5).map(tuple))
    def test_decode_is_monotone_in_lexicographic_order(self, radices):
        mr = MixedRadix(radices)
        decoded = [mr.decode(v) for v in range(min(mr.size, 50))]
        assert decoded == sorted(decoded)


# ------------------------------------------------------------------ star distances
class TestStarDistanceProperties:
    @given(perm=permutations_of_degree())
    def test_distance_to_self_is_zero(self, perm):
        assert star_distance(perm, perm) == 0

    @given(perm=permutations_of_degree(min_degree=3))
    def test_neighbors_at_distance_one(self, perm):
        for neighbor in star_neighbors(perm):
            assert star_distance(perm, neighbor) == 1

    @given(data=st.data(), n=st.integers(3, 7))
    def test_symmetry_and_diameter_bound(self, data, n):
        u = tuple(data.draw(st.permutations(list(range(n)))))
        v = tuple(data.draw(st.permutations(list(range(n)))))
        d_uv = star_distance(u, v)
        assert d_uv == star_distance(v, u)
        assert 0 <= d_uv <= (3 * (n - 1)) // 2

    @given(data=st.data(), n=st.integers(3, 6))
    def test_triangle_inequality(self, data, n):
        u = tuple(data.draw(st.permutations(list(range(n)))))
        v = tuple(data.draw(st.permutations(list(range(n)))))
        w = tuple(data.draw(st.permutations(list(range(n)))))
        assert star_distance(u, w) <= star_distance(u, v) + star_distance(v, w)

    @given(data=st.data(), n=st.integers(3, 7))
    def test_greedy_route_realises_the_closed_form(self, data, n):
        u = tuple(data.draw(st.permutations(list(range(n)))))
        v = tuple(data.draw(st.permutations(list(range(n)))))
        path = star_route(u, v)
        assert len(path) - 1 == star_distance(u, v)
        for a, b in zip(path, path[1:]):
            differing = [i for i in range(n) if a[i] != b[i]]
            assert len(differing) == 2 and 0 in differing


# ------------------------------------------------------------------------ Lemma 2
class TestLemma2Properties:
    @given(perm=permutations_of_degree(min_degree=3), data=st.data())
    def test_transposition_distance_is_one_or_three(self, perm, data):
        n = len(perm)
        a = data.draw(st.integers(0, n - 1))
        b = data.draw(st.integers(0, n - 1))
        assume(a != b)
        target = swap_symbols(perm, a, b)
        distance = star_distance(perm, target)
        assert distance in (1, 3)
        assert (distance == 1) == (perm[0] in (a, b))

    @given(perm=permutations_of_degree(min_degree=3), data=st.data())
    def test_canonical_path_is_shortest_and_correct(self, perm, data):
        n = len(perm)
        a = data.draw(st.integers(0, n - 1))
        b = data.draw(st.integers(0, n - 1))
        assume(a != b)
        path = transposition_path(perm, a, b)
        assert path[0] == perm
        assert path[-1] == swap_symbols(perm, a, b)
        assert len(path) - 1 == star_distance(perm, path[-1])


# ---------------------------------------------------------------------- Theorem 4
class TestConversionProperties:
    @given(pair=mesh_coordinates())
    def test_convert_round_trip(self, pair):
        n, coords = pair
        perm = convert_d_s(coords, n)
        assert sorted(perm) == list(range(n))
        assert convert_s_d(perm, n) == coords

    @given(pair=mesh_coordinates(max_degree=7), data=st.data())
    def test_mesh_edges_map_to_transpositions_at_distance_1_or_3(self, pair, data):
        n, coords = pair
        dimension = data.draw(st.integers(1, n - 1))
        index = n - 1 - dimension
        delta = data.draw(st.sampled_from([-1, +1]))
        new_value = coords[index] + delta
        assume(0 <= new_value <= dimension)
        neighbor = list(coords)
        neighbor[index] = new_value
        image_u = convert_d_s(coords, n)
        image_v = convert_d_s(tuple(neighbor), n)
        distance = star_distance(image_u, image_v)
        assert distance in (1, 3)
        # The two images differ by a symbol transposition (exactly two positions swapped).
        differing = [i for i in range(n) if image_u[i] != image_v[i]]
        assert len(differing) == 2
        assert image_u[differing[0]] == image_v[differing[1]]
        assert image_u[differing[1]] == image_v[differing[0]]

    @settings(max_examples=25)
    @given(n=st.integers(2, 6), data=st.data())
    def test_distinct_coordinates_map_to_distinct_permutations(self, n, data):
        coords_strategy = st.tuples(*[st.integers(0, n - 1 - i) for i in range(n - 1)])
        first = data.draw(coords_strategy)
        second = data.draw(coords_strategy)
        assume(first != second)
        assert convert_d_s(first, n) != convert_d_s(second, n)

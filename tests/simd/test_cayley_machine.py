"""Parity tests for :class:`~repro.simd.cayley_machine.CayleyMachine`.

The fast-core contract, extended to the whole Cayley family: the one-gather
``route_generator`` must be bit-identical -- registers and ledger -- to
routing the same moves through the generic validated tuple path
(``route_moves``), and the star-tree instance must behave exactly like the
hand-written :class:`~repro.simd.star_machine.StarMachine`.
"""

import pytest

from repro.exceptions import InvalidParameterError
from repro.simd.cayley_machine import CayleyMachine
from repro.simd.masks import Mask
from repro.simd.star_machine import StarMachine
from repro.topology.cayley import (
    BubbleSortGraph,
    PancakeGraph,
    TranspositionTreeGraph,
)


def fresh_machine(graph):
    machine = CayleyMachine(graph)
    machine.define_register("A", {node: index for index, node in enumerate(machine.nodes)})
    return machine


def family_graphs():
    return [
        PancakeGraph(4),
        BubbleSortGraph(4),
        TranspositionTreeGraph.star(4),
        TranspositionTreeGraph(5, ((0, 2), (1, 2), (2, 3), (3, 4))),
    ]


class TestConstruction:
    def test_rejects_non_cayley_topology(self):
        from repro.topology.hypercube import Hypercube

        with pytest.raises(InvalidParameterError):
            CayleyMachine(Hypercube(3))

    def test_graph_and_n_properties(self):
        machine = CayleyMachine(PancakeGraph(4))
        assert machine.graph == PancakeGraph(4)
        assert machine.n == 4
        assert machine.num_pes == 24


@pytest.mark.parametrize("graph", family_graphs(), ids=repr)
class TestRouteGeneratorParity:
    def test_full_route_matches_generic_path(self, graph):
        fast = fresh_machine(graph)
        slow = fresh_machine(graph)
        for generator in range(graph.num_generators):
            label = f"generator-{graph.generator_names[generator]}"
            fast.route_generator("A", "B", generator)
            moves = [
                (node, graph.neighbor_along(node, generator)) for node in slow.nodes
            ]
            slow.route_moves("A", "B", moves, label=label)
            assert fast.register_values("B") == slow.register_values("B")
            assert fast.stats.snapshot() == slow.stats.snapshot()

    def test_masked_route_matches_generic_path(self, graph):
        fast = fresh_machine(graph)
        slow = fresh_machine(graph)
        predicate = lambda node: node[0] < 2  # noqa: E731
        fast.route_generator("A", "B", 0, where=predicate)
        moves = [
            (node, graph.neighbor_along(node, 0))
            for node in slow.nodes
            if predicate(node)
        ]
        slow.route_moves(
            "A", "B", moves, label=f"generator-{graph.generator_names[0]}"
        )
        assert fast.register_values("B") == slow.register_values("B")
        assert fast.stats.snapshot() == slow.stats.snapshot()

    def test_mask_and_node_collection_forms_agree(self, graph):
        selected = [node for node in graph.nodes() if node[0] == 0]
        by_mask = fresh_machine(graph)
        by_nodes = fresh_machine(graph)
        by_mask.route_generator(
            "A", "B", 1, where=Mask.from_nodes(graph, selected)
        )
        by_nodes.route_generator("A", "B", 1, where=selected)
        assert by_mask.register_values("B") == by_nodes.register_values("B")
        assert by_mask.stats.snapshot() == by_nodes.stats.snapshot()

    def test_route_is_an_involution(self, graph):
        machine = fresh_machine(graph)
        machine.route_generator("A", "B", 0)
        machine.route_generator("B", "C", 0)
        assert machine.register_values("C") == machine.register_values("A")

    def test_generator_index_validated(self, graph):
        machine = fresh_machine(graph)
        with pytest.raises(InvalidParameterError):
            machine.route_generator("A", "B", graph.num_generators)
        with pytest.raises(InvalidParameterError):
            machine.route_generator("A", "B", -1)


class TestStarTreeMatchesStarMachine:
    """CayleyMachine over the star tree == StarMachine, generator for generator."""

    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_registers_and_counts_match(self, n):
        cayley = CayleyMachine(TranspositionTreeGraph.star(n))
        star = StarMachine(n)
        init = {node: index for index, node in enumerate(star.nodes)}
        cayley.define_register("A", init)
        star.define_register("A", init)
        for j in range(1, n):
            cayley.route_generator("A", "B", j - 1, label=f"generator-{j}")
            star.route_generator("A", "B", j)
            assert cayley.register_values("B") == star.register_values("B")
        assert cayley.stats.snapshot() == star.stats.snapshot()

    def test_masked_routes_match(self):
        cayley = CayleyMachine(TranspositionTreeGraph.star(4))
        star = StarMachine(4)
        init = {node: node[0] for node in star.nodes}
        cayley.define_register("A", init)
        star.define_register("A", init)
        predicate = lambda node: node[0] % 2 == 0  # noqa: E731
        cayley.route_generator("A", "B", 1, where=predicate, label="generator-2")
        star.route_generator("A", "B", 2, where=predicate)
        assert cayley.register_values("B") == star.register_values("B")
        assert cayley.stats.snapshot() == star.stats.snapshot()

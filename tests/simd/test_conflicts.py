"""Unit tests for repro.simd.conflicts (the Lemma 5 runtime check)."""

import pytest

from repro.exceptions import RouteConflictError
from repro.simd.conflicts import UnitRouteStep, check_unit_route_conflicts, paths_to_steps


class TestCheckUnitRouteConflicts:
    def test_disjoint_moves_pass(self):
        step = UnitRouteStep(moves=(((0,), (1,)), ((2,), (3,))))
        check_unit_route_conflicts(step)  # no exception
        assert step.num_messages == 2

    def test_empty_step_passes(self):
        check_unit_route_conflicts(UnitRouteStep(moves=()))

    def test_double_send_detected(self):
        step = UnitRouteStep(moves=(((0,), (1,)), ((0,), (2,))))
        with pytest.raises(RouteConflictError, match="transmits twice"):
            check_unit_route_conflicts(step)

    def test_double_receive_detected(self):
        step = UnitRouteStep(moves=(((0,), (1,)), ((2,), (1,))))
        with pytest.raises(RouteConflictError, match="receives twice"):
            check_unit_route_conflicts(step)

    def test_swap_is_legal(self):
        step = UnitRouteStep(moves=(((0,), (1,)), ((1,), (0,))))
        check_unit_route_conflicts(step)


class TestPathsToSteps:
    def test_empty_input(self):
        assert paths_to_steps([]) == []

    def test_equal_length_paths(self):
        steps = paths_to_steps([[(0,), (1,), (2,)], [(5,), (6,), (7,)]])
        assert len(steps) == 2
        assert steps[0].moves == (((0,), (1,)), ((5,), (6,)))
        assert steps[1].moves == (((1,), (2,)), ((6,), (7,)))

    def test_shorter_paths_stop_contributing(self):
        steps = paths_to_steps([[(0,), (1,)], [(5,), (6,), (7,), (8,)]])
        assert len(steps) == 3
        assert steps[0].num_messages == 2
        assert steps[1].num_messages == 1
        assert steps[2].num_messages == 1

    def test_single_node_paths_contribute_nothing(self):
        steps = paths_to_steps([[(0,)], [(1,), (2,)]])
        assert len(steps) == 1
        assert steps[0].moves == (((1,), (2,)),)

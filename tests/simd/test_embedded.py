"""Unit tests for the EmbeddedMeshMachine (Theorem 6 executed in software)."""

import pytest

from repro.exceptions import InvalidParameterError
from repro.embedding.mesh_to_star import MeshToStarEmbedding
from repro.simd.embedded import EmbeddedMeshMachine
from repro.simd.mesh_machine import MeshMachine


@pytest.fixture
def pair4():
    """A native D_4 mesh machine and an embedded one, identically initialised."""
    native = MeshMachine((4, 3, 2))
    embedded = EmbeddedMeshMachine(4)
    for machine in (native, embedded):
        machine.define_register("A", lambda node: node)
        machine.define_register("B", None)
    return native, embedded


class TestConstruction:
    def test_basic_properties(self):
        machine = EmbeddedMeshMachine(4)
        assert machine.n == 4
        assert machine.num_pes == 24
        assert machine.sides == (4, 3, 2)
        assert machine.star_machine.n == 4
        assert len(machine.nodes) == 24

    def test_accepts_prebuilt_embedding(self, embedding4):
        machine = EmbeddedMeshMachine(4, embedding=embedding4)
        assert machine.embedding is embedding4

    def test_rejects_mismatched_embedding(self, embedding5):
        with pytest.raises(InvalidParameterError):
            EmbeddedMeshMachine(4, embedding=embedding5)

    def test_rejects_degree_below_two(self):
        with pytest.raises(InvalidParameterError):
            EmbeddedMeshMachine(1)


class TestRegisters:
    def test_registers_are_keyed_by_mesh_nodes(self):
        machine = EmbeddedMeshMachine(4)
        machine.define_register("A", lambda node: sum(node))
        values = machine.read_register("A")
        assert set(values) == set(machine.mesh.nodes())
        assert values[(3, 2, 1)] == 6

    def test_mapping_init_and_write_value(self):
        machine = EmbeddedMeshMachine(4)
        machine.define_register("A", {(0, 0, 0): "origin"})
        assert machine.read_value("A", (0, 0, 0)) == "origin"
        machine.write_value("A", (1, 1, 1), "interior")
        assert machine.read_value("A", (1, 1, 1)) == "interior"

    def test_register_names_proxy(self):
        machine = EmbeddedMeshMachine(4)
        machine.define_register("X", 0)
        assert "X" in machine.register_names

    def test_values_live_on_the_mapped_star_pe(self, embedding4):
        machine = EmbeddedMeshMachine(4, embedding=embedding4)
        machine.define_register("A", {(3, 0, 1): "tagged"})
        star_values = machine.star_machine.read_register("A")
        assert star_values[(0, 3, 1, 2)] == "tagged"  # Figure 7 image of (3,0,1)


class TestApply:
    def test_unmasked(self):
        machine = EmbeddedMeshMachine(4)
        machine.define_register("A", 3)
        machine.apply("B", lambda a: a * 2, "A")
        assert all(v == 6 for v in machine.read_register("B").values())

    def test_masked_with_mesh_predicate(self):
        machine = EmbeddedMeshMachine(4)
        machine.define_register("A", 0)
        machine.apply("A", lambda a: a + 1, "A", where=lambda node: node[0] == 0)
        values = machine.read_register("A")
        assert sum(values.values()) == 6  # 6 mesh nodes have first coordinate 0

    def test_masked_with_node_list(self):
        machine = EmbeddedMeshMachine(4)
        machine.define_register("A", 0)
        machine.apply("A", lambda a: 1, "A", where=[(0, 0, 0), (1, 1, 1)])
        assert sum(machine.read_register("A").values()) == 2

    def test_local_op_counting(self):
        machine = EmbeddedMeshMachine(4)
        machine.define_register("A", 0)
        machine.apply("A", lambda a: a, "A")
        assert machine.stats.local_operations == 24


class TestRouting:
    def test_matches_native_mesh_machine_on_every_dimension(self, pair4):
        native, embedded = pair4
        for dim in range(3):
            for delta in (+1, -1):
                native.route_dimension("A", "B", dim, delta)
                embedded.route_dimension("A", "B", dim, delta)
                assert native.read_register("B") == embedded.read_register("B")

    def test_star_routes_at_most_three_per_mesh_route(self, pair4):
        _, embedded = pair4
        for dim in range(3):
            for delta in (+1, -1):
                used = embedded.route_dimension("A", "B", dim, delta)
                assert used <= 3
        assert embedded.star_stats.unit_routes <= 3 * embedded.stats.unit_routes

    def test_longest_dimension_is_single_hop(self, pair4):
        _, embedded = pair4
        assert embedded.route_dimension("A", "B", 0, +1) == 1

    def test_shorter_dimensions_take_three_hops(self, pair4):
        _, embedded = pair4
        assert embedded.route_dimension("A", "B", 1, +1) == 3
        assert embedded.route_dimension("A", "B", 2, +1) == 3

    def test_masked_route(self):
        machine = EmbeddedMeshMachine(4)
        machine.define_register("A", lambda node: node)
        machine.define_register("B", None)
        machine.route_dimension("A", "B", 0, +1, where=lambda node: node == (0, 0, 0))
        received = [node for node, value in machine.read_register("B").items() if value is not None]
        assert received == [(1, 0, 0)]

    def test_route_paper_dimension(self):
        machine = EmbeddedMeshMachine(4)
        machine.define_register("A", lambda node: node)
        machine.define_register("B", None)
        machine.route_paper_dimension("A", "B", 3, +1)  # paper dim 3 = tuple dim 0
        assert machine.read_value("B", (1, 0, 0)) == (0, 0, 0)

    def test_rejects_bad_arguments(self):
        machine = EmbeddedMeshMachine(4)
        machine.define_register("A", 0)
        with pytest.raises(InvalidParameterError):
            machine.route_dimension("A", "B", 0, 0)
        with pytest.raises(InvalidParameterError):
            machine.route_dimension("A", "B", 7, 1)

    def test_reset_stats_clears_both_ledgers(self):
        machine = EmbeddedMeshMachine(4)
        machine.define_register("A", 0)
        machine.route_dimension("A", "B", 1, +1)
        machine.reset_stats()
        assert machine.stats.unit_routes == 0
        assert machine.star_stats.unit_routes == 0

    def test_copy_register(self):
        machine = EmbeddedMeshMachine(4)
        machine.define_register("A", lambda node: node)
        machine.copy_register("A", "copy")
        assert machine.read_register("copy") == machine.read_register("A")

"""Property and parity tests for the rank-indexed fast core.

Two families of guarantees:

* the precomputed tables agree with the first-principles tuple algebra
  (move tables vs :func:`star_neighbors`, vectorised distance sweeps vs the
  per-pair closed form);
* the dense-register machines are *bit-identical* in traces and ledgers to
  the original tuple-dict implementation, reproduced here as reference
  subclasses that route through the generic (tuple-validated) primitives.
"""

import itertools
import random

import pytest

from repro.algorithms import mesh_broadcast, odd_even_transposition_sort
from repro.embedding.mesh_to_star import MeshToStarEmbedding
from repro.embedding.paths import unit_route_paths
from repro.permutations.generators import star_neighbors
from repro.permutations.ranking import (
    all_permutations,
    inversion_count,
    move_tables,
    permutation_rank,
    ranks_of,
)
from repro.simd.embedded import EmbeddedMeshMachine
from repro.simd.masks import Mask
from repro.simd.plans import build_unit_route_plan, unit_route_plan
from repro.simd.star_machine import StarMachine
from repro.topology.routing import star_distance, star_distances_from
from repro.topology.star import StarGraph


# ---------------------------------------------------------------- move tables
class TestMoveTables:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 6])
    def test_agrees_with_star_neighbors_everywhere(self, n):
        tables = move_tables(n)
        assert len(tables) == n - 1
        for rank, perm in enumerate(all_permutations(n)):
            neighbors = star_neighbors(perm)
            for j in range(1, n):
                assert int(tables[j - 1][rank]) == permutation_rank(neighbors[j - 1])

    @pytest.mark.parametrize("n", [2, 4, 6])
    def test_tables_are_fixed_point_free_involutions(self, n):
        for table in move_tables(n):
            for rank in range(len(table)):
                image = int(table[rank])
                assert image != rank
                assert int(table[image]) == rank

    def test_python_fallback_matches_numpy_tables(self, monkeypatch):
        import repro.permutations.ranking as ranking

        if ranking._np is None:
            pytest.skip("NumPy unavailable; the fallback IS the implementation")
        fast = move_tables(5)
        monkeypatch.setattr(ranking, "_np", None)
        # The shared implementation (and its fallback) lives in move_tables_for;
        # __wrapped__ bypasses the per-(generators, degree) cache.
        slow = ranking.move_tables_for.__wrapped__(
            ranking.star_position_generators(5), 5
        )
        for fast_table, slow_table in zip(fast, slow):
            assert list(map(int, fast_table)) == list(slow_table)

    def test_star_graph_exposes_tables(self):
        star = StarGraph(4)
        tables = star.move_tables()
        assert len(tables) == 3
        node = (2, 0, 3, 1)
        rank = star.node_index(node)
        for j in range(1, 4):
            assert star.neighbor_ranks(rank, j) == star.node_index(
                star.neighbor_along(node, j)
            )

    def test_ranks_of_matches_scalar_rank(self):
        rows = list(itertools.permutations(range(5)))
        ranks = ranks_of(rows)
        assert list(map(int, ranks)) == [permutation_rank(row) for row in rows]

    def test_ranks_of_exact_beyond_int64(self):
        # 21! - 1 overflows int64; the batch path must stay exact.
        row = tuple(range(20, -1, -1))
        (rank,) = list(ranks_of([row]))
        assert int(rank) == permutation_rank(row)
        assert int(rank) > 2 ** 63


# ------------------------------------------------------------------ distances
class TestDistancesFrom:
    @pytest.mark.parametrize("n", [2, 3, 4, 5])
    def test_matches_closed_form_for_every_pair(self, n):
        rng = random.Random(20260728 + n)
        origins = [tuple(rng.sample(range(n), n)) for _ in range(3)]
        origins.append(tuple(range(n)))
        for origin in origins:
            distances = star_distances_from(origin)
            for rank, target in enumerate(all_permutations(n)):
                assert int(distances[rank]) == star_distance(origin, target)

    def test_python_fallback_matches_vectorised(self, monkeypatch):
        import repro.topology.routing as routing

        if routing._np is None:
            pytest.skip("NumPy unavailable; the fallback IS the implementation")
        origin = (3, 1, 0, 2)
        fast = list(map(int, star_distances_from(origin)))
        monkeypatch.setattr(routing, "_np", None)
        assert list(star_distances_from(origin)) == fast

    def test_star_graph_method_respects_diameter(self):
        star = StarGraph(6)
        distances = star.distances_from(star.identity)
        assert len(distances) == star.num_nodes
        assert int(max(distances)) == star.diameter()
        assert int(distances[0]) == 0


# ----------------------------------------------------------- inversion counts
class TestInversionCount:
    def test_matches_naive_count_across_the_fenwick_threshold(self):
        rng = random.Random(7)
        for degree in (1, 2, 5, 15, 16, 17, 40):
            values = list(range(degree))
            rng.shuffle(values)
            naive = sum(
                1
                for i in range(degree)
                for j in range(i + 1, degree)
                if values[i] > values[j]
            )
            assert inversion_count(tuple(values)) == naive


# ----------------------------------------- reference (seed) implementations
class ReferenceStarMachine(StarMachine):
    """Routes generator moves through the generic tuple-validated primitive,
    exactly as the pre-fast-core implementation did."""

    def route_generator(self, source_register, destination_register, generator,
                        *, where=None, label=None):
        mask = Mask.coerce(self.topology, where)
        moves = []
        for node in self.nodes:
            if mask.is_active(node):
                moves.append((node, self.star.neighbor_along(node, generator)))
        self.route_moves(
            source_register,
            destination_register,
            moves,
            label=label or f"generator-{generator}",
        )


class ReferenceEmbeddedMachine(EmbeddedMeshMachine):
    """Replays mesh unit routes through tuple paths and ``route_paths``,
    exactly as the pre-fast-core implementation did."""

    def route_dimension(self, source_register, destination_register, dim, delta,
                        *, where=None, label=None):
        paper_dim = self.n - 1 - dim
        mesh_paths = unit_route_paths(self._embedding, paper_dim, delta)
        if where is not None:
            mask = Mask.coerce(self.mesh, where) if isinstance(where, Mask) else None
            if mask is not None:
                active = mask.is_active
            elif callable(where):
                active = where
            else:
                selected = {self.mesh.validate_node(node) for node in where}
                active = lambda node: node in selected  # noqa: E731
            mesh_paths = {src: path for src, path in mesh_paths.items() if active(src)}
        star_paths = {self._to_star[src]: path for src, path in mesh_paths.items()}
        used = self._star_machine.route_paths(
            source_register,
            destination_register,
            star_paths,
            label=label or f"mesh-dim{dim}{'+' if delta > 0 else '-'}",
        )
        self._mesh_stats.record_route(
            messages=len(star_paths),
            label=label or f"dim{dim}{'+' if delta > 0 else '-'}",
        )
        return used


def assert_same_trace(fast, reference, registers):
    """Registers and both ledgers must match bit for bit."""
    for name in registers:
        assert fast.read_register(name) == reference.read_register(name)
    assert fast.stats.snapshot() == reference.stats.snapshot()
    if hasattr(fast, "star_stats"):
        assert fast.star_stats.snapshot() == reference.star_stats.snapshot()


# ----------------------------------------------------------- trace parity
class TestDenseTraceParity:
    @pytest.mark.parametrize("n", [3, 4])
    def test_generator_routes_identical(self, n):
        fast, reference = StarMachine(n), ReferenceStarMachine(n)
        for machine in (fast, reference):
            machine.define_register("A", lambda node: node)
        for generator in range(1, n):
            fast.route_generator("A", "B", generator)
            reference.route_generator("A", "B", generator)
        # Masked route: only odd-rank PEs transmit.
        predicate = lambda node: permutation_rank(node) % 2 == 1  # noqa: E731
        fast.route_generator("A", "C", 1, where=predicate)
        reference.route_generator("A", "C", 1, where=predicate)
        assert_same_trace(fast, reference, ["A", "B", "C"])

    @pytest.mark.parametrize("n", [3, 4])
    def test_embedded_sorting_identical(self, n):
        fast, reference = EmbeddedMeshMachine(n), ReferenceEmbeddedMachine(n)
        rng = random.Random(2024)
        keys = {node: rng.randint(0, 10 ** 6) for node in fast.mesh.nodes()}
        for machine in (fast, reference):
            machine.define_register("K", dict(keys))
        fast_routes = odd_even_transposition_sort(fast, "K", dim=0)
        reference_routes = odd_even_transposition_sort(reference, "K", dim=0)
        assert fast_routes == reference_routes
        assert_same_trace(fast, reference, ["K"])

    @pytest.mark.parametrize("n", [3, 4])
    def test_embedded_broadcast_identical(self, n):
        fast, reference = EmbeddedMeshMachine(n), ReferenceEmbeddedMachine(n)
        for machine in (fast, reference):
            machine.define_register("V", lambda node: None)
            machine.write_value("V", tuple([0] * (n - 1)), "payload")
        fast_used = mesh_broadcast(fast, tuple([0] * (n - 1)), "V")
        reference_used = mesh_broadcast(reference, tuple([0] * (n - 1)), "V")
        assert fast_used == reference_used
        assert_same_trace(fast, reference, ["V", "V_bcast"])
        assert all(v == "payload" for v in fast.read_register("V_bcast").values())

    def test_masked_route_dimension_identical(self):
        fast, reference = EmbeddedMeshMachine(4), ReferenceEmbeddedMachine(4)
        for machine in (fast, reference):
            machine.define_register("A", lambda node: node)
            machine.define_register("B", None)
        predicate = lambda node: node[0] % 2 == 0  # noqa: E731
        fast_used = fast.route_dimension("A", "B", 0, +1, where=predicate)
        reference_used = reference.route_dimension("A", "B", 0, +1, where=predicate)
        assert fast_used == reference_used
        assert_same_trace(fast, reference, ["A", "B"])

    def test_theorem6_ratio_preserved(self):
        machine = EmbeddedMeshMachine(4)
        machine.define_register("A", 1)
        for dim in range(machine.mesh.ndim):
            machine.route_dimension("A", "B", dim, +1)
            machine.route_dimension("A", "B", dim, -1)
        assert machine.star_stats.unit_routes <= 3 * machine.stats.unit_routes


# ------------------------------------------------------------------ plans
class TestUnitRoutePlans:
    def test_plan_cached_per_degree_and_dimension(self):
        embedding = MeshToStarEmbedding(4)
        first = unit_route_plan(embedding, 2, +1)
        second = unit_route_plan(MeshToStarEmbedding(4), 2, +1)
        assert first is second

    def test_plan_matches_tuple_paths(self):
        embedding = MeshToStarEmbedding(4)
        star = embedding.star
        plan = build_unit_route_plan(embedding, 3, +1)
        node_paths = unit_route_paths(embedding, 3, +1)
        assert set(plan.sources) == set(node_paths)
        for source, index_path in zip(plan.sources, plan.index_paths):
            expected = [star.node_index(node) for node in node_paths[source]]
            assert list(index_path) == expected

    def test_plan_step_messages_sum_to_path_hops(self):
        embedding = MeshToStarEmbedding(4)
        plan = build_unit_route_plan(embedding, 2, -1)
        total_hops = sum(len(path) - 1 for path in plan.index_paths)
        assert sum(step.num_messages for step in plan.steps) == total_hops

    def test_subset_plan_restricts_sources(self):
        embedding = MeshToStarEmbedding(4)
        plan = build_unit_route_plan(embedding, 2, +1)
        chosen = plan.sources[::2]
        subset = plan.subset(chosen)
        assert subset.sources == tuple(chosen)
        assert subset.num_steps <= plan.num_steps
        assert sum(step.num_messages for step in subset.steps) == sum(
            len(path) - 1 for path in subset.index_paths
        )

"""Unit tests for the generic SIMD machine (registers, masks, local ops, routing)."""

import pytest

from repro.exceptions import MaskError, ProgramError, RouteConflictError, SimulationError
from repro.simd.machine import SIMDMachine
from repro.simd.masks import Mask
from repro.topology.mesh import Mesh


@pytest.fixture
def machine():
    return SIMDMachine(Mesh((3, 2)))


class TestRegisters:
    def test_define_with_constant_broadcasts(self, machine):
        machine.define_register("A", 5)
        assert all(v == 5 for v in machine.read_register("A").values())
        assert machine.stats.broadcasts == 1

    def test_define_with_callable(self, machine):
        machine.define_register("A", lambda node: node[0] * 10 + node[1])
        assert machine.read_value("A", (2, 1)) == 21

    def test_define_with_mapping(self, machine):
        machine.define_register("A", {node: i for i, node in enumerate(machine.nodes)})
        assert machine.read_value("A", machine.nodes[3]) == 3

    def test_mapping_missing_nodes_default_to_none(self, machine):
        machine.define_register("A", {(0, 0): 1})
        assert machine.read_value("A", (1, 1)) is None

    def test_write_and_read_value(self, machine):
        machine.define_register("A", 0)
        machine.write_value("A", (1, 0), 99)
        assert machine.read_value("A", (1, 0)) == 99

    def test_undefined_register_raises(self, machine):
        with pytest.raises(ProgramError):
            machine.read_register("nope")
        with pytest.raises(ProgramError):
            machine.read_value("nope", (0, 0))

    def test_register_names(self, machine):
        machine.define_register("B", 0)
        machine.define_register("A", 0)
        assert machine.register_names == ["A", "B"]

    def test_num_pes(self, machine):
        assert machine.num_pes == 6


class TestApply:
    def test_unmasked_apply(self, machine):
        machine.define_register("A", 2)
        machine.apply("B", lambda a: a * a, "A")
        assert all(v == 4 for v in machine.read_register("B").values())

    def test_masked_apply_with_predicate(self, machine):
        machine.define_register("A", 1)
        machine.define_register("B", 0)
        machine.apply("B", lambda a: a + 10, "A", where=lambda node: node[0] == 0)
        values = machine.read_register("B")
        assert values[(0, 0)] == 11 and values[(0, 1)] == 11
        assert values[(1, 0)] == 0

    def test_apply_counts_local_operations(self, machine):
        machine.define_register("A", 1)
        machine.apply("A", lambda a: a + 1, "A", where=lambda node: node[1] == 0)
        assert machine.stats.local_operations == 3

    def test_apply_multiple_sources(self, machine):
        machine.define_register("A", 3)
        machine.define_register("B", 4)
        machine.apply("C", lambda a, b: a + b, "A", "B")
        assert all(v == 7 for v in machine.read_register("C").values())

    def test_copy_register(self, machine):
        machine.define_register("A", lambda node: node)
        machine.copy_register("A", "B")
        assert machine.read_register("B") == machine.read_register("A")

    def test_paper_instruction_example(self, machine):
        # The paper's masked instruction A(i) := A(i) + 1, (f(i) = y).
        machine.define_register("A", 0)
        machine.apply("A", lambda a: a + 1, "A", where=lambda node: node[0] == 1)
        assert sum(machine.read_register("A").values()) == 2


class TestRouteMoves:
    def test_single_unit_route(self, machine):
        machine.define_register("A", lambda node: node)
        machine.define_register("B", None)
        machine.route_moves("A", "B", [((0, 0), (0, 1)), ((1, 0), (1, 1))])
        assert machine.read_value("B", (0, 1)) == (0, 0)
        assert machine.read_value("B", (1, 1)) == (1, 0)
        assert machine.stats.unit_routes == 1
        assert machine.stats.messages == 2

    def test_rejects_non_adjacent_move(self, machine):
        machine.define_register("A", 0)
        with pytest.raises(SimulationError):
            machine.route_moves("A", "B", [((0, 0), (2, 1))])

    def test_detects_double_send(self, machine):
        machine.define_register("A", 0)
        with pytest.raises(RouteConflictError):
            machine.route_moves("A", "B", [((1, 0), (0, 0)), ((1, 0), (2, 0))])

    def test_detects_double_receive(self, machine):
        machine.define_register("A", 0)
        with pytest.raises(RouteConflictError):
            machine.route_moves("A", "B", [((0, 0), (1, 0)), ((2, 0), (1, 0))])

    def test_conflict_check_can_be_disabled(self):
        machine = SIMDMachine(Mesh((3, 2)), check_conflicts=False)
        machine.define_register("A", 1)
        machine.route_moves("A", "B", [((0, 0), (1, 0)), ((2, 0), (1, 0))])
        assert machine.stats.unit_routes == 1

    def test_simultaneous_exchange(self, machine):
        # Two adjacent PEs swap values in one unit route (values read before writes).
        machine.define_register("A", lambda node: node)
        machine.route_moves("A", "A", [((0, 0), (0, 1)), ((0, 1), (0, 0))])
        assert machine.read_value("A", (0, 0)) == (0, 1)
        assert machine.read_value("A", (0, 1)) == (0, 0)

    def test_auto_defines_destination_register(self, machine):
        machine.define_register("A", 7)
        machine.route_moves("A", "fresh", [((0, 0), (0, 1))])
        assert machine.read_value("fresh", (0, 1)) == 7


class TestRoutePaths:
    def test_multi_hop_delivery(self, machine):
        machine.define_register("A", lambda node: f"from{node}")
        machine.define_register("B", None)
        paths = {(0, 0): [(0, 0), (1, 0), (2, 0), (2, 1)]}
        used = machine.route_paths("A", "B", paths)
        assert used == 3
        assert machine.read_value("B", (2, 1)) == "from(0, 0)"
        assert machine.stats.unit_routes == 3

    def test_multiple_paths_in_lockstep(self, machine):
        machine.define_register("A", lambda node: node)
        machine.define_register("B", None)
        paths = {
            (0, 0): [(0, 0), (1, 0)],
            (0, 1): [(0, 1), (1, 1)],
        }
        assert machine.route_paths("A", "B", paths) == 1
        assert machine.read_value("B", (1, 0)) == (0, 0)
        assert machine.read_value("B", (1, 1)) == (0, 1)

    def test_path_must_start_at_source(self, machine):
        machine.define_register("A", 0)
        with pytest.raises(SimulationError):
            machine.route_paths("A", "B", {(0, 0): [(1, 0), (0, 0)]})

    def test_conflicting_paths_detected(self, machine):
        machine.define_register("A", 0)
        paths = {
            (0, 0): [(0, 0), (1, 0)],
            (2, 0): [(2, 0), (1, 0)],
        }
        with pytest.raises(RouteConflictError):
            machine.route_paths("A", "B", paths)

    def test_empty_paths_are_a_noop(self, machine):
        machine.define_register("A", 0)
        assert machine.route_paths("A", "B", {}) == 0
        assert machine.stats.unit_routes == 0

    def test_scratch_register_cleaned_up(self, machine):
        machine.define_register("A", 1)
        machine.route_paths("A", "B", {(0, 0): [(0, 0), (1, 0)]})
        assert "__transit__" not in machine.register_names


class TestMask:
    def test_all_and_none(self, machine):
        topo = machine.topology
        assert Mask.all_active(topo).count() == 6
        assert Mask.none_active(topo).count() == 0

    def test_from_nodes_and_predicate(self, machine):
        topo = machine.topology
        mask = Mask.from_nodes(topo, [(0, 0), (2, 1)])
        assert mask.count() == 2 and mask.is_active((2, 1))
        predicate_mask = Mask.from_predicate(topo, lambda node: node[1] == 1)
        assert predicate_mask.count() == 3

    def test_from_nodes_rejects_foreign(self, machine):
        with pytest.raises(MaskError):
            Mask.from_nodes(machine.topology, [(9, 9)])

    def test_boolean_algebra(self, machine):
        topo = machine.topology
        left = Mask.from_predicate(topo, lambda node: node[0] == 0)
        right = Mask.from_predicate(topo, lambda node: node[1] == 0)
        assert (left & right).count() == 1
        assert (left | right).count() == 4
        assert (~left).count() == 4

    def test_coerce(self, machine):
        topo = machine.topology
        assert Mask.coerce(topo, None).count() == 6
        assert Mask.coerce(topo, [(0, 0)]).count() == 1
        assert Mask.coerce(topo, lambda node: True).count() == 6
        existing = Mask.all_active(topo)
        assert Mask.coerce(topo, existing) is existing

    def test_active_nodes_order(self, machine):
        mask = Mask.from_predicate(machine.topology, lambda node: node[0] == 2)
        assert mask.active_nodes() == [(2, 0), (2, 1)]


class TestStats:
    def test_reset(self, machine):
        machine.define_register("A", 0)
        machine.apply("A", lambda a: a, "A")
        machine.route_moves("A", "B", [((0, 0), (1, 0))])
        machine.reset_stats()
        snapshot = machine.stats.snapshot()
        assert snapshot["unit_routes"] == 0
        assert snapshot["messages"] == 0
        assert snapshot["local_operations"] == 0

    def test_snapshot_and_labels(self, machine):
        machine.define_register("A", 0)
        machine.route_moves("A", "B", [((0, 0), (1, 0))], label="test-route")
        snapshot = machine.stats.snapshot()
        assert snapshot["unit_routes"] == 1
        assert snapshot["label:test-route"] == 1

    def test_stats_addition(self, machine):
        from repro.simd.trace import RouteStatistics

        a = RouteStatistics(unit_routes=2, messages=5)
        b = RouteStatistics(unit_routes=1, messages=1, local_operations=4)
        combined = a + b
        assert combined.unit_routes == 3
        assert combined.messages == 6
        assert combined.local_operations == 4

"""Unit tests for the mask fast representation and the route-program layer."""

import pytest

from repro.exceptions import MaskError, ProgramError
from repro.simd import kernels
from repro.simd.masks import (
    MASK_ALL,
    MASK_NONE,
    Mask,
    mask_flags,
    mask_indices,
    spec_and,
    spec_not,
    spec_or,
)
from repro.simd.mesh_machine import MeshMachine
from repro.simd.embedded import EmbeddedMeshMachine
from repro.simd.programs import (
    Chain,
    Fill,
    Local,
    Route,
    ShiftSteps,
    compile_program,
    supports_programs,
)
from repro.simd.trace import RouteStatistics
from repro.topology.mesh import Mesh


# -------------------------------------------------------------------- masks
class TestMaskFastRepresentation:
    def test_named_constructors_carry_keys(self):
        mesh = Mesh((3, 4))
        parity = Mask.coordinate_parity(mesh, 1, 0)
        assert parity.key == ("parity", 1, 0)
        assert Mask.coordinate_equals(mesh, 0, 2).key == ("eq", 0, 2)
        assert Mask.coordinate_less(mesh, 1, 3).key == ("lt", 1, 3)
        assert Mask.coordinate_greater(mesh, 0, 0).key == ("gt", 0, 0)

    def test_spec_masks_are_cached_and_shared(self):
        mesh = Mesh((3, 4))
        assert Mask.coordinate_parity(mesh, 1, 0) is Mask.coordinate_parity(
            Mesh((3, 4)), 1, 0
        )

    def test_dense_flags_match_predicate(self):
        mesh = Mesh((3, 4))
        mask = Mask.coordinate_parity(mesh, 1, 1)
        reference = Mask.from_predicate(mesh, lambda node: node[1] % 2 == 1)
        assert mask.dense_flags() == reference.dense_flags()
        assert mask.active_indices() == reference.active_indices()
        assert mask.count() == reference.count()
        assert mask.active_nodes() == reference.active_nodes()

    def test_algebra_preserves_keys(self):
        mesh = Mesh((4, 2))
        low = Mask.coordinate_parity(mesh, 0, 0) & Mask.coordinate_less(mesh, 0, 3)
        assert low.key == ("and", ("parity", 0, 0), ("lt", 0, 3))
        assert (~Mask.coordinate_parity(mesh, 0, 0)).key == ("not", ("parity", 0, 0))
        assert (low | Mask.all_active(mesh)).key == MASK_ALL

    def test_predicate_masks_have_no_key(self):
        mesh = Mesh((2, 2))
        assert Mask.from_predicate(mesh, lambda node: True).key is None

    def test_spec_algebra_simplifications(self):
        a = ("parity", 0, 0)
        assert spec_and(MASK_ALL, a) == a
        assert spec_and(a, MASK_NONE) == MASK_NONE
        assert spec_or(MASK_NONE, a) == a
        assert spec_or(a, MASK_ALL) == MASK_ALL
        assert spec_not(spec_not(a)) == a

    def test_mask_flags_validates_spec(self):
        mesh = Mesh((3, 2))
        with pytest.raises(MaskError):
            mask_flags(mesh, ("parity", 5, 0))
        with pytest.raises(MaskError):
            mask_flags(mesh, ("frobnicate", 1))

    def test_mask_indices_match_flags(self):
        mesh = Mesh((3, 3))
        spec = spec_and(("gt", 0, 0), ("lt", 1, 2))
        flags = mask_flags(mesh, spec)
        assert list(mask_indices(mesh, spec)) == [
            index for index, flag in enumerate(flags) if flag
        ]

    def test_is_active_facade_still_works(self):
        mesh = Mesh((2, 3))
        mask = Mask.coordinate_equals(mesh, 1, 2)
        assert mask.is_active((0, 2)) and not mask.is_active((1, 1))
        with pytest.raises(MaskError):
            mask.is_active((9, 9))


# ------------------------------------------------------------------- kernels
class TestApplyKernel:
    def test_matches_apply_closure(self):
        sentinel = object()
        m1, m2 = MeshMachine((2, 3)), MeshMachine((2, 3))
        for machine in (m1, m2):
            machine.define_register("A", lambda node: node[0] * 3 + node[1])
            machine.define_register("B", lambda node: 10 - node[1])
        mask = ("parity", 1, 0)
        m1.apply_kernel("A", kernels.keep_min(sentinel), "A", "B",
                        where=Mask.from_spec(m1.topology, mask))
        m2.apply(
            "A",
            lambda a, b: a if b is sentinel else min(a, b),
            "A",
            "B",
            where=lambda node: node[1] % 2 == 0,
        )
        assert m1.read_register("A") == m2.read_register("A")
        assert m1.stats.snapshot() == m2.stats.snapshot()

    def test_source_arity_checked(self):
        machine = MeshMachine((2, 2))
        machine.define_register("A", 0)
        with pytest.raises(ProgramError):
            machine.apply_kernel("A", kernels.COPY, "A", "A")


# ----------------------------------------------------------------- ledger API
class TestRecordRoutes:
    def test_batched_equals_singles(self):
        batched, singles = RouteStatistics(), RouteStatistics()
        batched.record_routes(3, messages=17, label="x")
        for messages in (5, 5, 7):
            singles.record_route(messages=messages, label="x")
        assert batched.snapshot() == singles.snapshot()

    def test_zero_count_is_a_no_op(self):
        stats = RouteStatistics()
        stats.record_routes(0, messages=0, label="x")
        assert stats.snapshot() == RouteStatistics().snapshot()

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            RouteStatistics().record_routes(-1, messages=0)


# ------------------------------------------------------------------ programs
class TestRoutePrograms:
    def test_program_cached_per_geometry(self):
        steps = (Fill("S", 0), Route("S", "T", 0, +1))
        first = compile_program(MeshMachine((3, 2)), steps)
        second = compile_program(MeshMachine((3, 2)), steps)
        assert first is second
        other = compile_program(MeshMachine((2, 3)), steps)
        assert other is not first

    def test_program_shared_across_embedded_instances(self):
        steps = (Fill("S", 0), Route("S", "T", 0, +1))
        first = compile_program(EmbeddedMeshMachine(4), steps)
        second = compile_program(EmbeddedMeshMachine(4), steps)
        assert first is second

    def test_geometry_mismatch_raises(self):
        program = compile_program(MeshMachine((3, 2)), (Fill("S", 0),))
        with pytest.raises(ProgramError):
            program.run(MeshMachine((2, 2)))

    def test_supports_programs_excludes_subclasses(self):
        class Custom(MeshMachine):
            pass

        assert supports_programs(MeshMachine((2, 2)))
        assert supports_programs(EmbeddedMeshMachine(3))
        assert not supports_programs(Custom((2, 2)))

    def test_chain_fusion_matches_sequential_routes(self):
        fused, stepwise = MeshMachine((4, 2)), MeshMachine((4, 2))
        for machine in (fused, stepwise):
            machine.define_register("W", lambda node: node)
        program = compile_program(
            fused, (Chain("W", 0, -1, (3, 2, 1)),)
        )
        program.run(fused)
        for position in (3, 2, 1):
            stepwise.route_dimension(
                "W", "W", 0, -1, where=lambda node, p=position: node[0] == p
            )
        assert fused.read_register("W") == stepwise.read_register("W")
        assert fused.stats.snapshot() == stepwise.stats.snapshot()

    def test_shift_fusion_matches_stepwise(self):
        fused, stepwise = MeshMachine((5,)), MeshMachine((5,))
        for machine in (fused, stepwise):
            machine.define_register("A", lambda node: node[0] * 2)
        program = compile_program(
            fused, (ShiftSteps("A", "A_shift", "_shift_in", 0, +1, 2, -9),)
        )
        program.run(fused)
        stepwise.copy_register("A", "A_shift")
        for _ in range(2):
            stepwise.define_register("_shift_in", -9)
            stepwise.route_dimension("A_shift", "_shift_in", 0, +1)
            stepwise.copy_register("_shift_in", "A_shift")
        assert fused.read_register("A_shift") == stepwise.read_register("A_shift")
        assert fused.read_register("_shift_in") == stepwise.read_register("_shift_in")
        assert fused.stats.snapshot() == stepwise.stats.snapshot()

    def test_numeric_and_object_engines_agree(self):
        import repro.simd.programs as programs_module

        sentinel = object()
        steps = (
            Fill("_in", sentinel),
            Route("K", "_in", 0, +1, ("parity", 0, 0)),
            Local("K", kernels.keep_max(sentinel), ("K", "_in"), ("parity", 0, 1)),
        )
        numeric, object_only = MeshMachine((6, 2)), MeshMachine((6, 2))
        for machine in (numeric, object_only):
            machine.define_register("K", lambda node: (node[0] * 7 + node[1]) % 5)
        program = compile_program(numeric, steps)
        assert program._numeric is not None
        program.run(numeric)
        # Re-run through the object engine by disabling the numeric plan.
        stripped = programs_module.RouteProgram(
            geometry=program.geometry, steps=program.steps, _ops=program._ops
        )
        stripped.run(object_only)
        assert numeric.read_register("K") == object_only.read_register("K")
        # The staging register differs only in sentinel slots.
        fast_in = numeric.read_register("_in")
        slow_in = object_only.read_register("_in")
        for node, value in slow_in.items():
            if value is sentinel:
                assert fast_in[node] is sentinel
            else:
                assert fast_in[node] == value
        assert numeric.stats.snapshot() == object_only.stats.snapshot()

    def test_numeric_engine_bails_on_object_payload(self):
        steps = (
            Fill("_in", None),
            Route("K", "_in", 0, +1),
            Local("K", kernels.adopt(None), ("K", "_in")),
        )
        machine = MeshMachine((4,))
        machine.define_register("K", lambda node: ("payload", node[0]))
        program = compile_program(machine, steps)
        program.run(machine)  # must fall back without raising
        values = machine.read_register("K")
        assert values[(1,)] == ("payload", 0)

    def test_validates_step_parameters(self):
        machine = MeshMachine((3, 2))
        with pytest.raises(ProgramError):
            compile_program(machine, (Route("A", "B", 5, +1),))
        with pytest.raises(ProgramError):
            compile_program(machine, (Route("A", "B", 0, 2),))
        with pytest.raises(ProgramError):
            compile_program(
                machine, (Local("A", kernels.COPY, ("A", "B")),)
            )

    def test_embedded_star_ledger_matches_facade(self):
        compiled, facade = EmbeddedMeshMachine(4), EmbeddedMeshMachine(4)
        for machine in (compiled, facade):
            machine.define_register("A", lambda node: node[0])
        program = compile_program(
            compiled,
            (
                Route("A", "B", 0, +1, ("lt", 0, 2)),
                Route("A", "B", 1, -1),
            ),
        )
        program.run(compiled)
        facade.route_dimension("A", "B", 0, +1, where=lambda node: node[0] < 2)
        facade.route_dimension("A", "B", 1, -1)
        assert compiled.read_register("B") == facade.read_register("B")
        assert compiled.stats.snapshot() == facade.stats.snapshot()
        assert compiled.star_stats.snapshot() == facade.star_stats.snapshot()

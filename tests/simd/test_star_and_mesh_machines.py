"""Unit tests for StarMachine and MeshMachine (topology-specific unit routes)."""

import pytest

from repro.exceptions import InvalidParameterError
from repro.simd.mesh_machine import MeshMachine
from repro.simd.star_machine import StarMachine


class TestStarMachine:
    def test_construction(self):
        machine = StarMachine(4)
        assert machine.n == 4
        assert machine.num_pes == 24

    def test_rejects_degree_below_two(self):
        with pytest.raises(InvalidParameterError):
            StarMachine(1)

    def test_route_generator_moves_data_along_g_j(self):
        machine = StarMachine(3)
        machine.define_register("A", lambda node: node)
        machine.route_generator("A", "B", 2)
        for node in machine.nodes:
            sender = machine.star.neighbor_along(node, 2)
            assert machine.read_value("B", node) == sender

    def test_route_generator_is_one_unit_route(self):
        machine = StarMachine(4)
        machine.define_register("A", 0)
        machine.route_generator("A", "B", 1)
        assert machine.stats.unit_routes == 1
        assert machine.stats.messages == 24

    def test_route_generator_with_mask(self):
        machine = StarMachine(3)
        machine.define_register("A", "payload")
        machine.define_register("B", None)
        machine.route_generator("A", "B", 1, where=lambda node: node == (0, 1, 2))
        received = [node for node, value in machine.read_register("B").items() if value is not None]
        assert received == [(1, 0, 2)]

    def test_route_generator_rejects_bad_index(self):
        machine = StarMachine(4)
        machine.define_register("A", 0)
        with pytest.raises(InvalidParameterError):
            machine.route_generator("A", "B", 0)
        with pytest.raises(InvalidParameterError):
            machine.route_generator("A", "B", 4)

    def test_double_generator_route_restores_data(self):
        # Generators are involutions: routing twice along the same generator
        # brings every value back to its origin.
        machine = StarMachine(4)
        machine.define_register("A", lambda node: node)
        machine.route_generator("A", "B", 2)
        machine.route_generator("B", "C", 2)
        assert machine.read_register("C") == machine.read_register("A")


class TestMeshMachine:
    def test_construction(self):
        machine = MeshMachine((4, 3, 2))
        assert machine.sides == (4, 3, 2)
        assert machine.num_pes == 24

    def test_route_dimension_positive(self):
        machine = MeshMachine((3, 2))
        machine.define_register("A", lambda node: node)
        machine.define_register("B", None)
        machine.route_dimension("A", "B", 0, +1)
        assert machine.read_value("B", (1, 0)) == (0, 0)
        assert machine.read_value("B", (2, 1)) == (1, 1)
        # Boundary nodes at coordinate 0 receive nothing.
        assert machine.read_value("B", (0, 0)) is None

    def test_route_dimension_negative(self):
        machine = MeshMachine((3, 2))
        machine.define_register("A", lambda node: node)
        machine.define_register("B", None)
        machine.route_dimension("A", "B", 0, -1)
        assert machine.read_value("B", (0, 1)) == (1, 1)
        assert machine.read_value("B", (2, 0)) is None

    def test_route_counts_one_unit_route(self):
        machine = MeshMachine((4, 3))
        machine.define_register("A", 0)
        machine.route_dimension("A", "B", 1, +1)
        assert machine.stats.unit_routes == 1
        assert machine.stats.messages == 8  # 4 rows x 2 senders per row

    def test_route_dimension_with_mask(self):
        machine = MeshMachine((3, 3))
        machine.define_register("A", 1)
        machine.define_register("B", None)
        machine.route_dimension("A", "B", 1, +1, where=lambda node: node[0] == 0)
        receivers = [node for node, value in machine.read_register("B").items() if value is not None]
        assert receivers == [(0, 1), (0, 2)]

    def test_route_dimension_rejects_bad_arguments(self):
        machine = MeshMachine((3, 3))
        machine.define_register("A", 0)
        with pytest.raises(InvalidParameterError):
            machine.route_dimension("A", "B", 0, 2)
        with pytest.raises(InvalidParameterError):
            machine.route_dimension("A", "B", 5, 1)

    def test_route_paper_dimension(self):
        machine = MeshMachine((4, 3, 2))
        machine.define_register("A", lambda node: node)
        machine.define_register("B", None)
        # Paper dimension 1 is the length-2 dimension = tuple index 2.
        machine.route_paper_dimension("A", "B", 1, +1)
        assert machine.read_value("B", (0, 0, 1)) == (0, 0, 0)
        assert machine.read_value("B", (0, 0, 0)) is None

    def test_length_one_dimension_never_routes(self):
        machine = MeshMachine((1, 3))
        machine.define_register("A", 1)
        machine.define_register("B", None)
        machine.route_dimension("A", "B", 0, +1)
        assert all(v is None for v in machine.read_register("B").values())
        assert machine.stats.messages == 0

"""Calibration: the intervals must actually cover at their nominal rate.

The sampled campaigns' honesty rests on their intervals, so this suite
replays each interval construction against *known* ground truth -- exact
S_7 / S_8 whole-graph sweeps and closed-form family means -- over many
seeded replications and checks the empirical coverage:

* :func:`~repro.simulation.stats.wilson_interval` against exact distance
  histogram shares (binomial draws at the true proportion);
* :func:`~repro.simulation.stats.moments_interval` through
  :func:`~repro.simulation.sampling.sampled_distance_estimate` against the
  exact mean distance;
* the simultaneous machinery
  (:func:`~repro.simulation.stats.simultaneous_intervals` /
  :func:`~repro.simulation.stats.rank_intervals`) against the exact means
  and the true ranking of the four comparison families -- coverage here is
  *joint*: one replication counts only if every family is covered at once.

Every replication derives its stream from
:func:`~repro.simulation.stats.derive_trial_seed`, so the observed coverage
numbers are deterministic; the assertions allow nominal minus a slack that
accounts for the finite replication count.  Tier-1 runs ~40 replications;
``REPRO_HEAVY_TESTS=1`` raises that to ~200 with a tighter slack.
"""

import os

import pytest

np = pytest.importorskip("numpy")

from repro.analysis.comparison import closest_hypercube_for_star
from repro.simulation.sampling import (
    exact_average_distance,
    sampled_distance_estimate,
    sampled_pancake_estimate,
)
from repro.simulation.stats import (
    Z_95,
    derive_trial_seed,
    normal_cdf,
    normal_quantile,
    rank_intervals,
    simultaneous_intervals,
    wilson_interval,
)
from repro.topology.routing import star_distances_from

HEAVY = bool(os.environ.get("REPRO_HEAVY_TESTS"))

#: (replications, coverage slack) per tier: more replications, tighter slack.
REPLICATIONS, SLACK = (200, 0.05) if HEAVY else (40, 0.10)

NOMINAL = 0.95

#: Exact sweep degree: S_7 in tier-1, S_8 under the heavy flag.
SWEEP_DEGREE = 8 if HEAVY else 7


def _exact_star_histogram(n):
    """``distance -> exact share of ordered distinct pairs`` for ``S_n``.

    One identity sweep suffices: the star graph is vertex-transitive, so the
    identity row's distance distribution *is* the whole graph's.
    """
    distances = np.asarray(star_distances_from(tuple(range(n))))
    counts = np.bincount(distances)
    total = distances.size - 1  # exclude the self-pair at distance 0
    return {
        int(d): int(count) / total
        for d, count in enumerate(counts)
        if d > 0 and count
    }


class TestNormalQuantile:
    def test_recovers_z95(self):
        assert abs(normal_quantile(0.975) - Z_95) < 1e-12

    def test_round_trips_against_the_cdf(self):
        for p in (1e-9, 1e-4, 0.02425, 0.3, 0.5, 0.7, 0.975, 1 - 1e-4, 1 - 1e-9):
            assert abs(normal_cdf(normal_quantile(p)) - p) < 1e-9

    def test_symmetry(self):
        assert abs(normal_quantile(0.25) + normal_quantile(0.75)) < 1e-12


class TestWilsonCalibration:
    def test_coverage_at_exact_histogram_shares(self):
        histogram = _exact_star_histogram(SWEEP_DEGREE)
        # A mid-mass bucket and a tail bucket: Wilson must hold both.
        shares = sorted(histogram.values())
        for true_p in (shares[-1], shares[0]):
            covered = 0
            trials = 400
            for replication in range(REPLICATIONS):
                rng = np.random.default_rng(
                    derive_trial_seed(
                        7101, "wilson-calibration", SWEEP_DEGREE, true_p, replication
                    )
                )
                successes = int(rng.binomial(trials, true_p))
                _p_hat, low, high = wilson_interval(successes, trials)
                if low <= true_p <= high:
                    covered += 1
            coverage = covered / REPLICATIONS
            assert coverage >= NOMINAL - SLACK, (true_p, coverage)


class TestMomentsCalibration:
    def test_mean_interval_covers_exact_star_mean(self):
        exact = exact_average_distance("star", SWEEP_DEGREE)
        covered = 0
        for replication in range(REPLICATIONS):
            estimate = sampled_distance_estimate(
                "star", SWEEP_DEGREE, 1_500, seed=replication
            )
            if estimate.brackets(exact):
                covered += 1
        coverage = covered / REPLICATIONS
        assert coverage >= NOMINAL - SLACK, coverage


class TestSimultaneousCalibration:
    """Joint coverage of the csranks-style machinery at matched size 6.

    Size 6 keeps the per-replication cost tiny (the pancake estimator's
    exact tier sweeps 720 nodes) while the four families still produce the
    non-trivial true ranking the rank intervals must cover.
    """

    SIZE = 6

    def _family_estimates(self, replication):
        cube_dim = closest_hypercube_for_star(self.SIZE)
        estimates = []
        for family in ("star", "pancake", "bubble-sort", "hypercube"):
            if family == "pancake":
                estimate = sampled_pancake_estimate(
                    self.SIZE, 1_000, seed=replication
                )
            elif family == "hypercube":
                estimate = sampled_distance_estimate(
                    "hypercube", cube_dim, 1_000, seed=replication
                )
            else:
                estimate = sampled_distance_estimate(
                    family, self.SIZE, 1_000, seed=replication
                )
            estimates.append(
                (estimate.mean, (estimate.mean_high - estimate.mean) / Z_95)
            )
        return estimates

    def _exact_means(self):
        cube_dim = closest_hypercube_for_star(self.SIZE)
        from repro.topology.cayley import PancakeGraph
        from repro.topology.routing import index_bfs_distances

        pancake = PancakeGraph(self.SIZE)
        pancake_mean = int(
            np.asarray(
                index_bfs_distances(
                    pancake.neighbor_source(), pancake.num_nodes, 0
                )
            ).sum()
        ) / (pancake.num_nodes - 1)
        return [
            exact_average_distance("star", self.SIZE),
            pancake_mean,
            exact_average_distance("bubble-sort", self.SIZE),
            exact_average_distance("hypercube", cube_dim),
        ]

    def test_joint_interval_coverage(self):
        exact_means = self._exact_means()
        covered = 0
        for replication in range(REPLICATIONS):
            intervals = simultaneous_intervals(self._family_estimates(replication))
            if all(
                low <= exact <= high
                for (_mean, low, high), exact in zip(intervals, exact_means)
            ):
                covered += 1
        coverage = covered / REPLICATIONS
        assert coverage >= NOMINAL - SLACK, coverage

    def test_rank_interval_coverage(self):
        exact_means = self._exact_means()
        true_ranks = [
            1 + sum(1 for other in exact_means if other < mean)
            for mean in exact_means
        ]
        covered = 0
        for replication in range(REPLICATIONS):
            intervals = rank_intervals(self._family_estimates(replication))
            if all(
                interval.rank_low <= rank <= interval.rank_high
                for interval, rank in zip(intervals, true_ranks)
            ):
                covered += 1
        coverage = covered / REPLICATIONS
        assert coverage >= NOMINAL - SLACK, coverage

    def test_joint_intervals_contain_marginals(self):
        estimates = self._family_estimates(0)
        joint = simultaneous_intervals(estimates)
        for (mean, std_err), (_m, low, high) in zip(estimates, joint):
            assert low <= mean - Z_95 * std_err
            assert mean + Z_95 * std_err <= high

"""Tests for the fault-campaign subsystem (:mod:`repro.simulation`).

The headline contracts:

* **Oracle parity** -- masked-BFS detour distances equal networkx shortest
  paths on the faulted induced subgraph, for random fault sets across all
  four campaign families at n = 3..5.
* **Route realisability** -- every detour distance is witnessed by an
  explicit path whose hops are edges between alive nodes.
* **Determinism** -- campaigns are pure functions of their parameters
  (order-free trial seeding), and the batched alive-mask campaign is
  bit-identical to the per-trial tuple-loop reference.
* **Theorem regime** -- below the connectivity no trial disconnects and no
  sampled pair is unreachable; with zero faults every stretch is exactly 1.
"""

import random

import networkx as nx
import pytest

from repro.exceptions import InvalidParameterError
from repro.simulation import (
    CAMPAIGN_FAMILIES,
    campaign_instances,
    connectivity_campaign,
    connectivity_campaign_reference,
    derive_trial_seed,
    fault_counts_for_rates,
    masked_bfs_distances,
    masked_route,
    mean_interval,
    sample_fault_indices,
    stretch_campaign,
    wilson_interval,
)
from repro.topology.cayley import BubbleSortGraph, PancakeGraph
from repro.topology.hypercube import Hypercube
from repro.topology.nx_adapter import to_networkx
from repro.topology.routing import bfs_distances_from
from repro.topology.star import StarGraph

#: The four-family instance set of the oracle property tests: permutation
#: families at n = 3..5 plus hypercubes of comparable sizes.
ORACLE_INSTANCES = [
    StarGraph(3),
    StarGraph(4),
    StarGraph(5),
    PancakeGraph(3),
    PancakeGraph(4),
    PancakeGraph(5),
    BubbleSortGraph(3),
    BubbleSortGraph(4),
    BubbleSortGraph(5),
    Hypercube(3),
    Hypercube(4),
    Hypercube(7),
]


def _random_alive(rng, topology, survival=0.7):
    """A random alive mask keeping roughly *survival* of the nodes."""
    return [rng.random() < survival for _ in range(topology.num_nodes)]


class TestStats:
    def test_wilson_zero_successes_still_informative(self):
        p, low, high = wilson_interval(0, 80)
        assert p == 0.0 and low == 0.0 and 0.0 < high < 0.1

    def test_wilson_full_successes(self):
        p, low, high = wilson_interval(80, 80)
        assert p == 1.0 and high == pytest.approx(1.0) and 0.9 < low < 1.0

    def test_wilson_midpoint_brackets_estimate(self):
        p, low, high = wilson_interval(40, 80)
        assert low < p == 0.5 < high

    def test_wilson_domain(self):
        with pytest.raises(InvalidParameterError):
            wilson_interval(1, 0)
        with pytest.raises(InvalidParameterError):
            wilson_interval(5, 4)

    def test_mean_interval_brackets_mean(self):
        mean, low, high = mean_interval([1.0, 2.0, 3.0, 4.0])
        assert low < mean == 2.5 < high

    def test_mean_interval_single_sample_degenerates(self):
        assert mean_interval([1.5]) == (1.5, 1.5, 1.5)

    def test_mean_interval_empty_rejected(self):
        with pytest.raises(InvalidParameterError):
            mean_interval([])

    def test_trial_seeds_stable_and_distinct(self):
        a = derive_trial_seed(7, "star", 3, 0, 1)
        assert a == derive_trial_seed(7, "star", 3, 0, 1)
        others = {
            derive_trial_seed(7, "star", 3, 0, 2),
            derive_trial_seed(7, "pancake", 3, 0, 1),
            derive_trial_seed(8, "star", 3, 0, 1),
        }
        assert a not in others and len(others) == 3


class TestMaskedBfsOracle:
    """Masked BFS against networkx shortest paths on the faulted subgraph."""

    @pytest.mark.parametrize(
        "topology", ORACLE_INSTANCES, ids=lambda t: repr(t.num_nodes) + "n"
    )
    def test_distances_match_networkx_on_faulted_subgraph(self, topology):
        rng = random.Random(0xFA17)
        for trial in range(3):
            alive = _random_alive(rng, topology)
            if not any(alive):
                alive[0] = True
            source = rng.choice([i for i, a in enumerate(alive) if a])
            measured = masked_bfs_distances(topology, source, alive)
            survivors = [
                topology.node_from_index(i) for i, a in enumerate(alive) if a
            ]
            graph = to_networkx(topology, nodes=survivors)
            oracle = nx.single_source_shortest_path_length(
                graph, topology.node_from_index(source)
            )
            for index in range(topology.num_nodes):
                node = topology.node_from_index(index)
                if node in oracle:
                    assert measured[index] == oracle[node]
                else:  # dead or disconnected from the source
                    assert measured[index] == -1

    def test_no_faults_equals_plain_bfs(self):
        topology = StarGraph(4)
        alive = [True] * topology.num_nodes
        measured = masked_bfs_distances(topology, 0, alive)
        plain = bfs_distances_from(topology, topology.node_from_index(0))
        assert list(measured) == list(plain)

    def test_dead_origin_rejected(self):
        topology = StarGraph(3)
        alive = [True] * topology.num_nodes
        alive[2] = False
        with pytest.raises(InvalidParameterError):
            masked_bfs_distances(topology, 2, alive)
        with pytest.raises(InvalidParameterError):
            masked_bfs_distances(topology, topology.num_nodes, alive)


class TestMaskedRoute:
    @pytest.mark.parametrize(
        "topology", [StarGraph(4), PancakeGraph(4), BubbleSortGraph(4), Hypercube(4)]
    )
    def test_routes_witness_distances(self, topology):
        """Every finite detour distance is realised by an explicit path of
        alive-to-alive edges of exactly that many hops."""
        rng = random.Random(0x207E)
        alive = _random_alive(rng, topology)
        alive[0] = True
        distances = masked_bfs_distances(topology, 0, alive)
        neighbor_sets = {
            i: {int(j) for j in topology.neighbor_index_table()[i] if j >= 0}
            for i in range(topology.num_nodes)
        }
        for target in range(topology.num_nodes):
            path = masked_route(topology, 0, target, alive)
            if distances[target] < 0:
                assert path is None
                continue
            assert path is not None
            assert path[0] == 0 and path[-1] == target
            assert len(path) - 1 == distances[target]
            assert all(alive[i] for i in path)
            for a, b in zip(path, path[1:]):
                assert b in neighbor_sets[a]

    def test_source_equals_target(self):
        topology = StarGraph(3)
        alive = [True] * topology.num_nodes
        assert masked_route(topology, 1, 1, alive) == [1]

    def test_dead_target_unroutable(self):
        topology = StarGraph(3)
        alive = [True] * topology.num_nodes
        alive[3] = False
        assert masked_route(topology, 0, 3, alive) is None


class TestCampaigns:
    def test_batched_equals_tuple_reference(self):
        """The alive-mask campaign and the per-trial tuple loop draw the same
        faults and reach the same verdicts -- bit-identical points."""
        for topology in (StarGraph(4), Hypercube(4)):
            counts = [2, 5]
            kwargs = dict(fault_counts=counts, trials=25, seed=99, label="parity")
            assert connectivity_campaign(
                topology, **kwargs
            ) == connectivity_campaign_reference(topology, **kwargs)

    def test_campaign_deterministic(self):
        topology = StarGraph(4)
        kwargs = dict(fault_counts=[3], trials=20, seed=5, label="det")
        assert connectivity_campaign(topology, **kwargs) == connectivity_campaign(
            topology, **kwargs
        )
        s_kwargs = dict(
            fault_counts=[0, 3], trials=5, pairs_per_trial=3, seed=5, label="det"
        )
        assert stretch_campaign(topology, **s_kwargs) == stretch_campaign(
            topology, **s_kwargs
        )

    @pytest.mark.parametrize("family", CAMPAIGN_FAMILIES)
    def test_sub_connectivity_never_disconnects(self, family):
        """The theorem regime: fewer faults than the connectivity cannot
        disconnect a maximally connected family."""
        name, topology = campaign_instances(3)[family]
        kappa = topology.degree(topology.node_from_index(0))
        points = connectivity_campaign(
            topology,
            fault_counts=[kappa - 1],
            trials=30,
            seed=11,
            label=family,
        )
        assert points[0].disconnected == 0
        assert points[0].p_disconnect == 0.0 and points[0].ci_low == 0.0

    def test_zero_faults_stretch_exactly_one(self):
        for family in CAMPAIGN_FAMILIES:
            name, topology = campaign_instances(3)[family]
            (point,) = stretch_campaign(
                topology,
                fault_counts=[0],
                trials=4,
                pairs_per_trial=4,
                seed=3,
                label=family,
            )
            assert point.mean_stretch == 1.0 and point.max_stretch == 1.0
            assert point.unreachable == 0 and point.ci_low == point.ci_high == 1.0

    def test_stretch_never_below_one(self):
        topology = StarGraph(4)
        points = stretch_campaign(
            topology,
            fault_counts=[2, 6],
            trials=10,
            pairs_per_trial=5,
            seed=17,
            label="star",
        )
        for point in points:
            if point.pairs > point.unreachable:
                assert point.mean_stretch >= 1.0
                assert point.max_stretch >= point.mean_stretch

    def test_fault_counts_for_rates_clamp_and_domain(self):
        assert fault_counts_for_rates(120, (0.05, 0.1)) == [6, 12]
        assert fault_counts_for_rates(10, (0.99,)) == [9]  # clamped to n-1
        with pytest.raises(InvalidParameterError):
            fault_counts_for_rates(10, (1.0,))
        with pytest.raises(InvalidParameterError):
            fault_counts_for_rates(10, (-0.1,))

    def test_sample_fault_indices_domain(self):
        rng = random.Random(0)
        assert sample_fault_indices(rng, 10, 0) == []
        assert len(set(sample_fault_indices(rng, 10, 9))) == 9
        with pytest.raises(InvalidParameterError):
            sample_fault_indices(rng, 10, 10)

    def test_campaign_instances_matched_sizes(self):
        instances = campaign_instances(4)
        assert set(instances) == set(CAMPAIGN_FAMILIES)
        sizes = {family: topo.num_nodes for family, (_, topo) in instances.items()}
        assert sizes["star"] == sizes["pancake"] == sizes["bubble-sort"] == 120
        # Q_ceil(log2 5!) = Q_7: the smallest hypercube reaching 120 nodes.
        assert sizes["hypercube"] == 128
        assert instances["hypercube"][0] == "Q_7"

    def test_campaign_rejects_bad_trials(self):
        topology = StarGraph(3)
        with pytest.raises(InvalidParameterError):
            connectivity_campaign(
                topology, fault_counts=[1], trials=0, seed=1, label="x"
            )
        with pytest.raises(InvalidParameterError):
            stretch_campaign(
                topology,
                fault_counts=[1],
                trials=1,
                pairs_per_trial=0,
                seed=1,
                label="x",
            )
        with pytest.raises(InvalidParameterError):
            stretch_campaign(
                topology,
                fault_counts=[topology.num_nodes - 1],
                trials=1,
                pairs_per_trial=1,
                seed=1,
                label="x",
            )


class TestFaultExperiments:
    """The registry experiments over the campaign layer."""

    @pytest.mark.parametrize("experiment_id", ["FAULT-CONNECTIVITY", "FAULT-STRETCH"])
    def test_fast_profile_claim_holds(self, experiment_id):
        from repro.experiments.registry import get_spec, run_experiment

        result = run_experiment(experiment_id, profile="fast")
        result.assert_claim()
        assert result.headers == list(get_spec(experiment_id).schema.columns)
        assert len(result.rows) > 0

    def test_connectivity_guaranteed_rows_flagged(self):
        from repro.experiments.registry import run_experiment

        result = run_experiment("FAULT-CONNECTIVITY", profile="fast")
        guaranteed = [row for row in result.rows if "< connectivity" in str(row[3])]
        assert guaranteed and all(row[6] == 0 for row in guaranteed)
        assert result.summary["sub_connectivity_disconnections"] == 0

    def test_stretch_zero_fault_rows_are_one(self):
        from repro.experiments.registry import run_experiment

        result = run_experiment("FAULT-STRETCH", profile="fast")
        zero_rows = [row for row in result.rows if row[3] == 0]
        assert zero_rows
        for row in zero_rows:
            assert row[7].startswith("1.000") and row[8] == "1.000"

    def test_experiment_deterministic_payloads(self):
        """Same params => same bytes: the campaign experiments are pure."""
        import json

        from repro.experiments.artifacts import build_payload
        from repro.experiments.registry import get_spec

        for experiment_id in ("FAULT-CONNECTIVITY", "FAULT-STRETCH"):
            spec = get_spec(experiment_id)
            params = spec.params("fast")
            a = build_payload("fast", params, spec.run(**params))
            b = build_payload("fast", params, spec.run(**params))
            assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

"""Tests for the S_13+ sampled campaign layer.

Three layers, each held against an exact small-degree oracle:

* :func:`repro.topology.routing.bounded_bfs_ball` against whole-graph
  sweeps (:func:`index_bfs_distances`) and masked fault floods
  (:func:`masked_bfs_distances`) -- the depth-capped kernel the campaigns
  stand on;
* :func:`repro.simulation.sampling.sampled_pancake_estimate` against
  per-pair BFS ground truth (exact tier) and against the exact sweep's
  verdicts for every truncated-tier classification;
* :func:`repro.simulation.sampled_campaign.sampled_fault_campaign` and the
  SAMPLED-FAULT / SAMPLED-STRETCH / RANKING experiments: accounting
  identity, zero-fault oracles, sub-connectivity oracle, chunk and backend
  invariance, registry wiring.
"""

import os

import pytest

np = pytest.importorskip("numpy")

from repro.exceptions import InvalidParameterError
from repro.experiments.registry import get_spec, list_experiments, run_experiment
from repro.simulation.rerouting import masked_bfs_distances
from repro.simulation.sampled_campaign import (
    SAMPLED_CAMPAIGN_FAMILIES,
    sampled_campaign_instances,
    sampled_fault_campaign,
)
from repro.simulation.sampling import (
    default_pancake_depth,
    pancake_relative_ranks,
    sampled_pancake_estimate,
)
from repro.simulation.stats import derive_trial_seed
from repro.topology.cayley import PancakeGraph
from repro.topology.routing import bounded_bfs_ball, index_bfs_distances
from repro.topology.star import StarGraph

HEAVY = bool(os.environ.get("REPRO_HEAVY_TESTS"))


def _full_sweep(topology, origin=0):
    return np.asarray(
        index_bfs_distances(topology.neighbor_index_table(), topology.num_nodes, origin)
    )


class TestBoundedBall:
    def test_full_depth_ball_equals_whole_graph_sweep(self):
        star = StarGraph(6)
        full = _full_sweep(star)
        ball = bounded_bfs_ball(
            star.neighbor_source(), 0, max_depth=int(full.max())
        )
        assert not ball.truncated
        assert ball.size == star.num_nodes
        assert np.array_equal(np.asarray(ball.nodes), np.arange(star.num_nodes))
        assert np.array_equal(np.asarray(ball.distances), full)
        assert ball.levels == int(full.max())

    @pytest.mark.parametrize("depth", [0, 1, 2, 3])
    def test_shallow_ball_is_the_sweep_restricted_to_depth(self, depth):
        star = StarGraph(6)
        full = _full_sweep(star)
        ball = bounded_bfs_ball(star.neighbor_source(), 0, max_depth=depth)
        expected = np.nonzero(full <= depth)[0]
        assert np.array_equal(np.asarray(ball.nodes), expected)
        assert np.array_equal(np.asarray(ball.distances), full[expected])
        # Below the eccentricity the cap is what stopped the sweep.
        assert ball.truncated == (depth < int(full.max()))

    def test_truncated_distinguishes_cap_from_component_exhaustion(self):
        star = StarGraph(5)
        ecc = int(_full_sweep(star).max())
        capped = bounded_bfs_ball(star.neighbor_source(), 0, max_depth=ecc - 1)
        exhausted = bounded_bfs_ball(star.neighbor_source(), 0, max_depth=ecc + 5)
        assert capped.truncated
        assert not exhausted.truncated
        assert exhausted.levels == ecc

    def test_excluded_ball_matches_masked_flood(self):
        star = StarGraph(6)
        rng = np.random.default_rng(7)
        faults = rng.choice(np.arange(1, star.num_nodes), size=40, replace=False)
        alive = np.ones(star.num_nodes, dtype=bool)
        alive[faults] = False
        masked = np.asarray(masked_bfs_distances(star, 0, alive))
        ball = bounded_bfs_ball(
            star.neighbor_source(),
            0,
            max_depth=star.num_nodes,
            excluded=np.sort(faults),
        )
        dense = np.full(star.num_nodes, -1, dtype=np.int64)
        dense[np.asarray(ball.nodes)] = np.asarray(ball.distances)
        assert np.array_equal(dense, masked)
        assert not ball.truncated

    def test_chunk_size_never_changes_the_ball(self):
        star = StarGraph(6)
        reference = bounded_bfs_ball(star.neighbor_source(), 3, max_depth=3)
        for chunk in (1, 7, 64, 10**9):
            ball = bounded_bfs_ball(
                star.neighbor_source(), 3, max_depth=3, chunk_nodes=chunk
            )
            assert np.array_equal(np.asarray(ball.nodes), np.asarray(reference.nodes))
            assert np.array_equal(
                np.asarray(ball.distances), np.asarray(reference.distances)
            )
            assert ball.truncated == reference.truncated

    def test_distance_of_reports_minus_one_outside_the_ball(self):
        star = StarGraph(6)
        full = _full_sweep(star)
        ball = bounded_bfs_ball(star.neighbor_source(), 0, max_depth=2)
        probes = np.asarray([0, 5, star.num_nodes - 1])
        expected = np.where(full[probes] <= 2, full[probes], -1)
        assert np.array_equal(np.asarray(ball.distance_of(probes)), expected)

    def test_excluded_origin_is_rejected(self):
        star = StarGraph(5)
        with pytest.raises(InvalidParameterError, match="excluded"):
            bounded_bfs_ball(
                star.neighbor_source(),
                0,
                max_depth=2,
                excluded=np.asarray([0], dtype=np.int64),
            )

    def test_implicit_backend_matches_table_backend(self):
        star = StarGraph(7)
        table_ball = bounded_bfs_ball(star.neighbor_source(), 11, max_depth=3)
        os.environ["REPRO_NEIGHBORS"] = "implicit"
        try:
            implicit_source = StarGraph(7).neighbor_source()
            assert implicit_source.table is None
            implicit_ball = bounded_bfs_ball(implicit_source, 11, max_depth=3)
        finally:
            del os.environ["REPRO_NEIGHBORS"]
        assert np.array_equal(
            np.asarray(implicit_ball.nodes), np.asarray(table_ball.nodes)
        )
        assert np.array_equal(
            np.asarray(implicit_ball.distances), np.asarray(table_ball.distances)
        )
        assert implicit_ball.truncated == table_ball.truncated


class TestPancakeEstimator:
    @pytest.mark.parametrize("n", [3, 4, 5, 6, 7, 8])
    def test_exact_tier_matches_per_pair_sweeps(self, n):
        estimate = sampled_pancake_estimate(n, 100, seed=42)
        assert estimate.exact
        assert estimate.truncated == 0 and estimate.resolved == 100
        graph = PancakeGraph(n)
        full = _full_sweep(graph)
        rng = np.random.default_rng(derive_trial_seed(42, "sampled-pancake", n, 100))
        sources = rng.integers(0, graph.num_nodes, size=100, dtype=np.int64)
        targets = rng.integers(0, graph.num_nodes - 1, size=100, dtype=np.int64)
        targets += targets >= sources
        exact = [
            int(_full_sweep(graph, int(source))[target])
            for source, target in zip(sources, targets)
        ]
        assert estimate.mean == pytest.approx(sum(exact) / len(exact), abs=1e-12)
        assert estimate.diameter_lower_bound == max(exact)
        assert sum(estimate.histogram.values()) == 100

    def test_relative_rank_identity(self):
        # d(source, target) == d(identity, source^-1 o target): the
        # vertex-transitivity relabeling the estimator stands on.
        n = 6
        graph = PancakeGraph(n)
        full = _full_sweep(graph)
        rng = np.random.default_rng(3)
        sources = rng.integers(0, graph.num_nodes, 25)
        targets = rng.integers(0, graph.num_nodes, 25)
        relative = pancake_relative_ranks(sources, targets, n)
        for source, target, rel in zip(sources, targets, relative):
            assert _full_sweep(graph, int(source))[target] == full[rel]

    def test_truncated_tier_accounting_matches_exact_sweep(self):
        n = 7
        depth = 3
        estimate = sampled_pancake_estimate(n, 300, seed=7, max_depth=depth)
        assert not estimate.exact
        assert estimate.resolved + estimate.truncated == 300
        assert estimate.truncated > 0
        graph = PancakeGraph(n)
        full = _full_sweep(graph)
        rng = np.random.default_rng(derive_trial_seed(7, "sampled-pancake", n, 300))
        sources = rng.integers(0, graph.num_nodes, size=300, dtype=np.int64)
        targets = rng.integers(0, graph.num_nodes - 1, size=300, dtype=np.int64)
        targets += targets >= sources
        exact = full[pancake_relative_ranks(sources, targets, n)]
        assert estimate.truncated == int((exact > depth).sum())
        # Truncation certifies distance > depth, so the diameter lower
        # bound is depth + 1 and the mean is a lower bound on the exact one.
        assert estimate.diameter_lower_bound == depth + 1
        exact_estimate = sampled_pancake_estimate(n, 300, seed=7)
        assert estimate.mean <= exact_estimate.mean

    def test_pairs_do_not_depend_on_depth(self):
        shallow = sampled_pancake_estimate(7, 200, seed=9, max_depth=2)
        deep = sampled_pancake_estimate(7, 200, seed=9, max_depth=6)
        # Deepening the ball resolves more of the same pairs, so resolved
        # counts grow monotonically and resolved histograms are nested.
        assert deep.resolved >= shallow.resolved
        for distance, count in shallow.histogram.items():
            assert deep.histogram.get(distance) == count

    def test_chunk_invariance(self):
        reference = sampled_pancake_estimate(7, 200, seed=5, max_depth=4)
        for chunk in (1, 7, 64, 10**9):
            estimate = sampled_pancake_estimate(
                7, 200, seed=5, max_depth=4, chunk_nodes=chunk
            )
            assert estimate == reference

    def test_default_depth_grows_with_budget(self):
        assert default_pancake_depth(13) == 6
        assert default_pancake_depth(20) >= 4

    def test_rejection_message_names_this_estimator(self):
        from repro.simulation.sampling import sampled_pair_distances

        with pytest.raises(InvalidParameterError, match="sampled_pancake_estimate"):
            sampled_pair_distances("pancake", 6, 10, 0)


class TestSampledFaultCampaign:
    @pytest.mark.parametrize("family", SAMPLED_CAMPAIGN_FAMILIES)
    def test_oracles_at_small_degree(self, family):
        name, topology = sampled_campaign_instances(6)[family]
        points = sampled_fault_campaign(
            topology,
            fault_counts=(0, 3),
            trials=6,
            pairs_per_trial=4,
            depth=4,
            seed=11,
            label=f"{family}/6",
        )
        kappa = 5
        for point in points:
            assert point.reached + point.disconnected + point.truncated == point.pairs
            if point.fault_count == 0:
                assert point.reached == point.pairs
                assert point.mean_stretch == 1.0 and point.max_stretch == 1.0
            if point.fault_count < kappa:
                assert point.disconnected == 0
            if point.reached:
                assert point.mean_stretch >= 1.0

    def test_deterministic_and_chunk_invariant(self):
        _name, topology = sampled_campaign_instances(6)["star"]
        kwargs = dict(
            fault_counts=(0, 3),
            trials=6,
            pairs_per_trial=4,
            depth=4,
            seed=11,
            label="star/6",
        )
        reference = sampled_fault_campaign(topology, **kwargs)
        assert sampled_fault_campaign(topology, **kwargs) == reference
        assert sampled_fault_campaign(topology, chunk_nodes=13, **kwargs) == reference

    def test_disconnection_is_provable_when_faults_cut_the_origin(self):
        # Kill every neighbour of the origin: the faulted ball collapses to
        # the origin alone, the frontier dies (not truncated), and every
        # pair classifies as a disconnection proof.
        star = StarGraph(5)
        source = star.neighbor_source()
        neighbors = np.sort(
            np.asarray(source.neighbor_block(np.asarray([0]))).reshape(-1)
        )
        ball = bounded_bfs_ball(source, 0, max_depth=3, excluded=neighbors)
        assert ball.size == 1
        assert not ball.truncated

    def test_depth_must_exceed_detour_slack(self):
        _name, topology = sampled_campaign_instances(5)["star"]
        with pytest.raises(InvalidParameterError, match="detour_slack"):
            sampled_fault_campaign(
                topology,
                fault_counts=(0,),
                trials=1,
                pairs_per_trial=1,
                depth=2,
                seed=1,
                label="star/5",
                detour_slack=2,
            )


class TestExperiments:
    def test_registry_has_the_three_new_experiments(self):
        experiments = list_experiments()
        for experiment_id in ("SAMPLED-FAULT", "SAMPLED-STRETCH", "RANKING"):
            assert experiment_id in experiments
            spec = get_spec(experiment_id)
            assert spec.schema is not None
            assert "fast" in spec.profiles and "heavy" in spec.profiles
        assert len(experiments) == 24

    def test_sampled_fault_truncation_fields_in_schema(self):
        schema = get_spec("SAMPLED-FAULT").schema
        assert "truncated" in schema.columns
        assert "reached" in schema.columns
        assert "disconnected" in schema.columns
        assert "total_truncated" in schema.summary_keys
        stretch_schema = get_spec("SAMPLED-STRETCH").schema
        assert "truncated" in stretch_schema.columns
        assert "total_truncated" in stretch_schema.summary_keys

    def test_sampled_fault_fast_profile_claim_holds(self):
        result = run_experiment("SAMPLED-FAULT", profile="fast")
        assert result.summary["claim_holds"] is True
        assert result.headers == list(get_spec("SAMPLED-FAULT").schema.columns)
        reached = result.headers.index("reached")
        disconnected = result.headers.index("disconnected")
        truncated = result.headers.index("truncated")
        pairs = result.headers.index("pairs")
        for row in result.rows:
            assert row[reached] + row[disconnected] + row[truncated] == row[pairs]

    def test_sampled_stretch_fast_profile_claim_holds(self):
        result = run_experiment("SAMPLED-STRETCH", profile="fast")
        assert result.summary["claim_holds"] is True
        assert result.summary["worst_stretch"] >= 1.0

    def test_ranking_fast_profile_claim_holds(self):
        result = run_experiment("RANKING", profile="fast")
        assert result.summary["claim_holds"] is True
        assert result.summary["exact_checked_sizes"]
        intervals = result.summary["rank_intervals"]
        for per_size in intervals.values():
            for rank_low, rank_high in per_size.values():
                assert 1 <= rank_low <= rank_high <= len(per_size)

    @pytest.mark.skipif(not HEAVY, reason="S_13 acceptance run is heavy-gated")
    def test_s13_fast_profile_runs_table_free(self):
        os.environ["REPRO_NEIGHBORS"] = "implicit"
        try:
            result = run_experiment("SAMPLED-FAULT", profile="fast")
        finally:
            del os.environ["REPRO_NEIGHBORS"]
        assert result.summary["claim_holds"] is True
        assert any(row[0] == 13 for row in result.rows)

"""Sampled whole-graph statistics (repro.simulation.sampling, PR 8).

The contract under test: sampled distances are deterministic in ``(family,
size, samples, seed)`` and invariant under every chunk size, the closed-form
per-pair distances agree with the exact graph metrics at sweepable sizes,
the 95% mean interval brackets the exact average distance, and the interval
arithmetic (``moments_interval``) agrees with the incumbent
``mean_interval`` to floating-point noise.  The degree-13 estimator -- the
whole point of the module -- must run with no table on disk or in RAM.
"""

import itertools
import math
import os

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError, TableDegreeError
from repro.simulation.sampling import (
    SAMPLING_FAMILIES,
    exact_average_distance,
    family_diameter_formula,
    family_num_nodes,
    sampled_distance_estimate,
    sampled_pair_distances,
)
from repro.simulation.stats import (
    mean_interval,
    moments_interval,
    wilson_interval,
)

HEAVY = bool(os.environ.get("REPRO_HEAVY_TESTS"))

#: One modest instance per family, shared by the statistical tests.
INSTANCES = (("star", 7), ("bubble-sort", 7), ("hypercube", 10))


class TestFamilyHelpers:
    def test_num_nodes(self):
        assert family_num_nodes("star", 5) == 120
        assert family_num_nodes("bubble-sort", 4) == 24
        assert family_num_nodes("hypercube", 10) == 1024

    def test_diameter_formulas(self):
        assert family_diameter_formula("star", 9) == 12  # floor(3*8/2)
        assert family_diameter_formula("bubble-sort", 5) == 10
        assert family_diameter_formula("hypercube", 7) == 7

    def test_pancake_is_rejected_with_the_reason(self):
        with pytest.raises(InvalidParameterError) as excinfo:
            family_num_nodes("pancake", 5)
        assert "closed form" in str(excinfo.value)
        with pytest.raises(InvalidParameterError):
            sampled_pair_distances("pancake", 5, 10, 0)

    def test_size_bounds(self):
        with pytest.raises(TableDegreeError):
            family_num_nodes("star", 21)  # 21! overflows int64
        with pytest.raises(InvalidParameterError):
            family_num_nodes("hypercube", 63)  # node ids must fit in int64
        with pytest.raises(InvalidParameterError):
            family_num_nodes("bubble-sort", 1)  # no distinct pairs at 1! = 1


class TestPairSampling:
    @pytest.mark.parametrize("family,size", INSTANCES)
    def test_deterministic_in_the_seed(self, family, size):
        a = sampled_pair_distances(family, size, 500, 42)
        b = sampled_pair_distances(family, size, 500, 42)
        assert np.array_equal(a, b)
        c = sampled_pair_distances(family, size, 500, 43)
        assert not np.array_equal(a, c)

    @pytest.mark.parametrize("family,size", INSTANCES)
    def test_chunk_size_never_changes_the_distances(self, family, size, monkeypatch):
        reference = sampled_pair_distances(family, size, 400, 7)
        for chunk in (1, 13, 10**9):
            assert np.array_equal(
                sampled_pair_distances(family, size, 400, 7, chunk_nodes=chunk),
                reference,
            )
        monkeypatch.setenv("REPRO_CHUNK_NODES", "37")
        assert np.array_equal(
            sampled_pair_distances(family, size, 400, 7), reference
        )

    @pytest.mark.parametrize("family,size", INSTANCES)
    def test_distances_are_in_range(self, family, size):
        distances = sampled_pair_distances(family, size, 2000, 11)
        assert distances.shape == (2000,)
        assert distances.dtype == np.int64
        # Pairs are distinct, so no distance is ever 0; the closed-form
        # diameter is the hard upper bound.
        assert int(distances.min()) >= 1
        assert int(distances.max()) <= family_diameter_formula(family, size)

    def test_star_pairs_match_the_graph_metric(self):
        """Closed-form sampled distances == BFS distances on the real graph."""
        from repro.permutations.ranking import unrank_batch
        from repro.topology.star import StarGraph

        star = StarGraph(5)
        distances = sampled_pair_distances("star", 5, 64, 3)
        # Recreate the pair stream exactly as the sampler draws it.
        from repro.simulation.stats import derive_trial_seed

        rng = np.random.default_rng(
            derive_trial_seed(3, "sampled-distance", "star", 5, 64)
        )
        sources = rng.integers(0, 120, size=64, dtype=np.int64)
        targets = rng.integers(0, 119, size=64, dtype=np.int64)
        targets += targets >= sources
        for s, t, d in zip(sources, targets, distances):
            u = star.node_from_index(int(s))
            v = star.node_from_index(int(t))
            assert star.distance(u, v) == int(d)

    def test_bubble_sort_pairs_match_the_graph_metric(self):
        from repro.topology.cayley import bubble_sort_distance
        from repro.permutations.ranking import unrank_batch
        from repro.simulation.stats import derive_trial_seed

        distances = sampled_pair_distances("bubble-sort", 5, 64, 9)
        rng = np.random.default_rng(
            derive_trial_seed(9, "sampled-distance", "bubble-sort", 5, 64)
        )
        sources = rng.integers(0, 120, size=64, dtype=np.int64)
        targets = rng.integers(0, 119, size=64, dtype=np.int64)
        targets += targets >= sources
        source_rows = unrank_batch(sources, 5)
        target_rows = unrank_batch(targets, 5)
        for u, v, d in zip(source_rows, target_rows, distances):
            assert bubble_sort_distance(
                tuple(map(int, u)), tuple(map(int, v))
            ) == int(d)


class TestExactAnchors:
    """``exact_average_distance`` against brute force at tiny sizes."""

    def test_star_matches_brute_force(self):
        from repro.topology.star import StarGraph

        star = StarGraph(4)
        nodes = list(star.nodes())
        total = sum(
            star.distance(u, v) for u, v in itertools.permutations(nodes, 2)
        )
        pairs = len(nodes) * (len(nodes) - 1)
        assert exact_average_distance("star", 4) == pytest.approx(total / pairs)

    def test_bubble_sort_matches_brute_force(self):
        from repro.topology.cayley import BubbleSortGraph

        graph = BubbleSortGraph(4)
        nodes = list(graph.nodes())
        total = sum(
            graph.distance(u, v) for u, v in itertools.permutations(nodes, 2)
        )
        pairs = len(nodes) * (len(nodes) - 1)
        assert exact_average_distance("bubble-sort", 4) == pytest.approx(
            total / pairs
        )

    def test_hypercube_matches_brute_force(self):
        m = 4
        total = sum(
            bin(u ^ v).count("1")
            for u in range(1 << m)
            for v in range(1 << m)
            if u != v
        )
        pairs = (1 << m) * ((1 << m) - 1)
        assert exact_average_distance("hypercube", m) == pytest.approx(
            total / pairs
        )


class TestEstimate:
    @pytest.mark.parametrize("family,size", INSTANCES)
    def test_interval_brackets_the_exact_mean(self, family, size):
        estimate = sampled_distance_estimate(family, size, 20_000, 2206)
        assert estimate.brackets(exact_average_distance(family, size))
        assert estimate.diameter_consistent
        assert estimate.mean_low <= estimate.mean <= estimate.mean_high

    @pytest.mark.parametrize("family,size", INSTANCES)
    def test_histogram_accounts_for_every_sample(self, family, size):
        estimate = sampled_distance_estimate(family, size, 3_000, 5)
        assert sum(estimate.histogram.values()) == 3_000
        for distance, count in estimate.histogram.items():
            assert 1 <= distance <= estimate.diameter_formula
            assert estimate.histogram_intervals[distance] == wilson_interval(
                count, 3_000
            )
        assert estimate.diameter_lower_bound == max(estimate.histogram)

    def test_estimate_is_chunk_invariant_and_deterministic(self):
        reference = sampled_distance_estimate("star", 6, 1_000, 77)
        again = sampled_distance_estimate("star", 6, 1_000, 77, chunk_nodes=17)
        assert again == reference

    def test_moments_interval_agrees_with_mean_interval(self):
        distances = sampled_pair_distances("star", 7, 5_000, 13)
        total = int(distances.sum())
        total_squares = int((distances * distances).sum())
        from_moments = moments_interval(total, total_squares, 5_000)
        from_values = mean_interval([int(d) for d in distances])
        assert from_moments == pytest.approx(from_values, abs=1e-12)

    def test_degree_13_needs_no_table(self, tmp_path, monkeypatch):
        """The headline case: S_13 statistics with no table in RAM or on disk."""
        monkeypatch.setenv("REPRO_TABLE_CACHE", str(tmp_path))
        estimate = sampled_distance_estimate("star", 13, 5_000, 2206)
        assert estimate.num_nodes == math.factorial(13)
        assert estimate.diameter_formula == 18
        assert estimate.diameter_consistent
        assert 1 <= estimate.diameter_lower_bound <= 18
        # No cache file was created: the estimator is table-free.
        assert list(tmp_path.iterdir()) == []

    @pytest.mark.skipif(
        not HEAVY,
        reason="exact S_10 sweep takes ~15 s; set REPRO_HEAVY_TESTS=1",
    )
    def test_interval_brackets_exact_s10(self):
        """Acceptance: the sampled CI brackets the exact S_10 average.

        A 95% interval misses one seed in twenty by construction; the test
        pins a seed whose draw covers the exact value comfortably (the
        coverage *rate* is the statistical claim, checked at small sizes by
        ``test_interval_brackets_the_exact_mean`` across three families).
        """
        exact = exact_average_distance("star", 10)
        estimate = sampled_distance_estimate("star", 10, 200_000, 42)
        assert estimate.brackets(exact)
        assert estimate.diameter_consistent


class TestExperiments:
    def test_sampled_distance_fast_profile_claim_holds(self):
        from repro.experiments.registry import run_experiment

        result = run_experiment("SAMPLED-DISTANCE", profile="fast")
        assert result.summary["claim_holds"] is True
        assert result.summary["exact_checked_degrees"] == [5]

    def test_sampled_properties_fast_profile_claim_holds(self):
        from repro.experiments.registry import run_experiment

        result = run_experiment("SAMPLED-PROPERTIES", profile="fast")
        assert result.summary["claim_holds"] is True
        assert result.summary["families"] == list(SAMPLING_FAMILIES)
        assert result.summary["bracket_checks"] == 3

    def test_sampled_distance_runs_past_the_table_ceiling(self):
        from repro.experiments.registry import run_experiment

        result = run_experiment(
            "SAMPLED-DISTANCE", degrees=(13,), samples=2_000
        )
        assert result.summary["claim_holds"] is True
        bound, formula = result.summary["diameter_lower_bounds"]["13"]
        assert formula == 18
        assert bound <= formula

"""Numba backend parity: compiled kernels must agree bit for bit with NumPy.

The whole file skips when numba is not importable (it is an optional
accelerator, never a dependency of the tier-1 suite); CI runs it in a
dedicated job leg with numba installed and ``REPRO_BACKEND=numba``.
"""

import numpy as np
import pytest

numba = pytest.importorskip("numba")

from repro.embedding.metrics import (  # noqa: E402
    measure_embedding,
    measure_embedding_reference,
)
from repro.embedding.mesh_to_star import MeshToStarEmbedding  # noqa: E402
from repro.simulation.rerouting import masked_bfs_distances  # noqa: E402
from repro.topology.routing import (  # noqa: E402
    connected_under_alive_mask,
    index_bfs_distances,
    star_distances_from,
)
from repro.topology.star import StarGraph  # noqa: E402


@pytest.fixture()
def numba_backend(monkeypatch):
    """Force the compiled backend on; the numpy run in each test clears it."""
    monkeypatch.setenv("REPRO_BACKEND", "numba")


def _with_numpy(monkeypatch, fn):
    """Evaluate *fn* under the numpy oracle backend."""
    monkeypatch.setenv("REPRO_BACKEND", "numpy")
    try:
        return fn()
    finally:
        monkeypatch.setenv("REPRO_BACKEND", "numba")


class TestDistanceParity:
    def test_star_distances_from(self, numba_backend, monkeypatch):
        for n, origin in ((4, (3, 1, 0, 2)), (6, tuple(range(6)))):
            compiled = np.asarray(star_distances_from(origin))
            oracle = _with_numpy(
                monkeypatch, lambda: np.asarray(star_distances_from(origin))
            )
            assert compiled.dtype == oracle.dtype
            assert np.array_equal(compiled, oracle)

    def test_star_distances_chunked(self, numba_backend):
        origin = (2, 0, 4, 1, 3)
        reference = np.asarray(star_distances_from(origin))
        for chunk in (1, 7, 10**9):
            assert np.array_equal(
                np.asarray(star_distances_from(origin, chunk_nodes=chunk)),
                reference,
            )


class TestBfsParity:
    def test_unmasked_bfs(self, numba_backend, monkeypatch):
        star = StarGraph(5)
        table = star.neighbor_index_table()
        compiled = np.asarray(index_bfs_distances(table, star.num_nodes, 17))
        oracle = _with_numpy(
            monkeypatch,
            lambda: np.asarray(index_bfs_distances(table, star.num_nodes, 17)),
        )
        assert np.array_equal(compiled, oracle)

    def test_masked_bfs(self, numba_backend, monkeypatch):
        star = StarGraph(5)
        alive = np.ones(star.num_nodes, dtype=bool)
        alive[[3, 17, 44, 90]] = False
        compiled = np.asarray(masked_bfs_distances(star, 0, alive))
        oracle = _with_numpy(
            monkeypatch, lambda: np.asarray(masked_bfs_distances(star, 0, alive))
        )
        assert np.array_equal(compiled, oracle)
        assert int(compiled[3]) == -1

    def test_connectivity_campaign_kernel(self, numba_backend, monkeypatch):
        star = StarGraph(5)
        neighbor_ranks = [star.node_index(v) for v in star.neighbors(star.identity)]
        for dead in (neighbor_ranks, neighbor_ranks[:-1], []):
            alive = np.ones(star.num_nodes, dtype=bool)
            alive[list(dead)] = False
            compiled = connected_under_alive_mask(star, alive)
            oracle = _with_numpy(
                monkeypatch, lambda: connected_under_alive_mask(star, alive)
            )
            assert compiled == oracle


class TestImplicitKernelParity:
    """PR-8 kernels: compiled batch rank / implicit neighbours vs NumPy."""

    def test_rank_batch(self, numba_backend, monkeypatch):
        import math

        from repro.permutations.ranking import rank_batch, unrank_batch

        for n in (5, 8, 13):
            ranks = np.random.default_rng(n).integers(
                0, math.factorial(n), size=256, dtype=np.int64
            )
            perms = unrank_batch(ranks, n)
            compiled = rank_batch(perms)
            oracle = _with_numpy(monkeypatch, lambda: rank_batch(perms))
            assert compiled.dtype == oracle.dtype
            assert np.array_equal(compiled, oracle)
            assert np.array_equal(compiled, ranks)

    def test_implicit_neighbor_block(self, numba_backend, monkeypatch):
        from repro.permutations.ranking import (
            implicit_neighbor_block,
            star_position_generators,
        )

        generators = star_position_generators(7)
        ranks = np.random.default_rng(7).integers(0, 5040, size=300, dtype=np.int64)
        compiled = implicit_neighbor_block(ranks, generators, 7)
        oracle = _with_numpy(
            monkeypatch, lambda: implicit_neighbor_block(ranks, generators, 7)
        )
        assert compiled.dtype == oracle.dtype
        assert np.array_equal(compiled, oracle)

    def test_implicit_bfs(self, numba_backend, monkeypatch):
        star = StarGraph(6)
        monkeypatch.setenv("REPRO_NEIGHBORS", "implicit")
        source = star.neighbor_source()
        assert source.table is None
        compiled = np.asarray(index_bfs_distances(source, star.num_nodes, 0))
        oracle = _with_numpy(
            monkeypatch,
            lambda: np.asarray(index_bfs_distances(source, star.num_nodes, 0)),
        )
        assert np.array_equal(compiled, oracle)
        # And both match the table-backed sweep.
        monkeypatch.setenv("REPRO_NEIGHBORS", "table")
        table_swept = np.asarray(
            index_bfs_distances(star.neighbor_index_table(), star.num_nodes, 0)
        )
        assert np.array_equal(compiled, table_swept)

    def test_sampled_estimate(self, numba_backend, monkeypatch):
        from repro.simulation.sampling import sampled_distance_estimate

        compiled = sampled_distance_estimate("star", 9, 5_000, 2206)
        oracle = _with_numpy(
            monkeypatch, lambda: sampled_distance_estimate("star", 9, 5_000, 2206)
        )
        assert compiled == oracle


class TestEmbeddingParity:
    def test_measure_embedding(self, numba_backend, monkeypatch):
        for n in (3, 4, 5):
            compiled = measure_embedding(MeshToStarEmbedding(n))
            oracle = _with_numpy(
                monkeypatch,
                lambda: measure_embedding(MeshToStarEmbedding(n)),
            )
            assert compiled == oracle
            # And both must equal the tuple-walking seed implementation.
            assert compiled == measure_embedding_reference(MeshToStarEmbedding(n))

"""Chunked streaming kernels are exact: every chunk size is bit-identical.

``REPRO_CHUNK_NODES`` (or the ``chunk_nodes=`` keyword) only trades memory
against throughput -- these tests sweep pathological chunk sizes (1, a small
prime, larger than the whole graph) over every streamed kernel and demand
array equality with the unchunked result, plus unit coverage of the
``repro.backend`` selection knobs themselves.
"""

import logging

import numpy as np
import pytest

import repro.backend as backend
from repro.backend import (
    DEFAULT_CHUNK_NODES,
    backend_name,
    resolve_chunk_nodes,
    use_numba,
)
from repro.embedding.metrics import (
    _build_mesh_to_star_edge_data,
    measure_embedding,
    measure_embedding_reference,
)
from repro.embedding.mesh_to_star import MeshToStarEmbedding
from repro.exceptions import InvalidParameterError
from repro.simulation.rerouting import masked_bfs_distances
from repro.topology.routing import (
    bfs_distances_from,
    connected_under_alive_mask,
    index_bfs_distances,
    star_distances_from,
)
from repro.topology.star import StarGraph

CHUNK_SIZES = (1, 7, 64, 10**9)


def _alive_mask(num_nodes, dead):
    mask = np.ones(num_nodes, dtype=bool)
    mask[list(dead)] = False
    return mask


class TestStarDistancesChunks:
    def test_kwarg_chunks_match_default(self, star5):
        reference = np.asarray(star_distances_from(star5.identity))
        for chunk in CHUNK_SIZES:
            chunked = np.asarray(
                star_distances_from(star5.identity, chunk_nodes=chunk)
            )
            assert np.array_equal(chunked, reference)

    def test_env_chunks_match_default(self, star5, monkeypatch):
        reference = np.asarray(star_distances_from(star5.identity))
        for chunk in (3, 50):
            monkeypatch.setenv("REPRO_CHUNK_NODES", str(chunk))
            assert np.array_equal(
                np.asarray(star_distances_from(star5.identity)), reference
            )

    def test_non_identity_origin(self, star5):
        origin = (2, 0, 4, 1, 3)
        reference = np.asarray(star_distances_from(origin))
        assert np.array_equal(
            np.asarray(star_distances_from(origin, chunk_nodes=11)), reference
        )
        # Cross-check against the BFS sweep (no closed form at all).
        swept = np.asarray(
            bfs_distances_from(star5, origin, use_closed_form=False)
        )
        assert np.array_equal(reference, swept)


class TestBfsChunks:
    def test_index_bfs_chunks_match(self, star5):
        table = star5.neighbor_index_table()
        reference = np.asarray(index_bfs_distances(table, star5.num_nodes, 0))
        for chunk in CHUNK_SIZES:
            chunked = np.asarray(
                index_bfs_distances(table, star5.num_nodes, 0, chunk_nodes=chunk)
            )
            assert np.array_equal(chunked, reference)

    def test_masked_index_bfs_chunks_match(self, star5):
        table = star5.neighbor_index_table()
        alive = _alive_mask(star5.num_nodes, dead=(3, 17, 44, 90))
        reference = np.asarray(
            index_bfs_distances(table, star5.num_nodes, 0, alive_mask=alive)
        )
        assert int(reference[3]) == -1  # dead nodes stay unreached
        for chunk in CHUNK_SIZES:
            chunked = np.asarray(
                index_bfs_distances(
                    table, star5.num_nodes, 0, alive_mask=alive, chunk_nodes=chunk
                )
            )
            assert np.array_equal(chunked, reference)

    def test_masked_bfs_distances_chunks_match(self, star5):
        alive = _alive_mask(star5.num_nodes, dead=(5, 6, 7, 100, 111))
        reference = np.asarray(masked_bfs_distances(star5, 0, alive))
        for chunk in CHUNK_SIZES:
            chunked = np.asarray(
                masked_bfs_distances(star5, 0, alive, chunk_nodes=chunk)
            )
            assert np.array_equal(chunked, reference)

    def test_all_alive_masked_bfs_equals_plain_bfs(self, star5):
        alive = np.ones(star5.num_nodes, dtype=bool)
        masked = np.asarray(masked_bfs_distances(star5, 0, alive, chunk_nodes=13))
        plain = np.asarray(
            bfs_distances_from(star5, star5.identity, use_closed_form=False)
        )
        assert np.array_equal(masked, plain)


class TestConnectivityChunks:
    def test_connected_verdict_is_chunk_invariant(self, star5, monkeypatch):
        # Killing all n-1 neighbours of the identity disconnects it; killing
        # n-2 of them cannot (connectivity = degree, maximal fault tolerance).
        neighbor_ranks = [star5.node_index(v) for v in star5.neighbors(star5.identity)]
        disconnected = _alive_mask(star5.num_nodes, dead=neighbor_ranks)
        still_connected = _alive_mask(star5.num_nodes, dead=neighbor_ranks[:-1])
        for chunk in (1, 9, 10**9):
            monkeypatch.setenv("REPRO_CHUNK_NODES", str(chunk))
            assert not connected_under_alive_mask(star5, disconnected)
            assert connected_under_alive_mask(star5, still_connected)


class TestEmbeddingChunks:
    def test_edge_data_metrics_are_chunk_invariant(self):
        embedding = MeshToStarEmbedding(5)
        reference = _build_mesh_to_star_edge_data(embedding).metrics()
        for chunk in CHUNK_SIZES:
            chunked = _build_mesh_to_star_edge_data(
                embedding, chunk_nodes=chunk
            ).metrics()
            assert chunked == reference

    def test_env_chunked_measure_matches_reference_oracle(self, monkeypatch):
        for n in (4, 5):
            oracle = measure_embedding_reference(MeshToStarEmbedding(n))
            for chunk in (1, 17):
                monkeypatch.setenv("REPRO_CHUNK_NODES", str(chunk))
                # Fresh instance: the edge data is cached per embedding.
                assert measure_embedding(MeshToStarEmbedding(n)) == oracle


class TestBackendSelection:
    def test_default_backend_is_numpy(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert backend_name() == "numpy"
        assert use_numba() is False

    def test_backend_env_is_normalised_and_validated(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "  NumPy ")
        assert backend_name() == "numpy"
        monkeypatch.setenv("REPRO_BACKEND", "cuda")
        with pytest.raises(InvalidParameterError):
            backend_name()

    def test_numba_request_without_numba_warns_once_and_falls_back(
        self, monkeypatch, caplog
    ):
        # The warn-once fallback goes through the telemetry logging shim
        # (PR 9): a library-silent "repro.backend" warning, not a raw
        # warnings.warn -- the CLI's stderr handler is what makes it visible.
        monkeypatch.setenv("REPRO_BACKEND", "numba")
        monkeypatch.setattr(backend, "numba_available", lambda: False)
        monkeypatch.setattr(backend, "_warned_numba_missing", False)
        with caplog.at_level(logging.WARNING, logger="repro.backend"):
            assert use_numba() is False
            assert any(
                "falling back to the numpy" in record.getMessage()
                for record in caplog.records
            )
            caplog.clear()
            assert use_numba() is False  # a second call must stay silent
            assert not caplog.records

    def test_numba_request_with_numba_dispatches(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numba")
        monkeypatch.setattr(backend, "numba_available", lambda: True)
        assert use_numba() is True


class TestResolveChunkNodes:
    def test_precedence_explicit_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHUNK_NODES", raising=False)
        assert resolve_chunk_nodes() == DEFAULT_CHUNK_NODES
        monkeypatch.setenv("REPRO_CHUNK_NODES", "4096")
        assert resolve_chunk_nodes() == 4096
        assert resolve_chunk_nodes(128) == 128  # explicit beats env

    @pytest.mark.parametrize("bad", [0, -5, 2.5, True, "many"])
    def test_rejects_non_positive_ints(self, bad):
        with pytest.raises(InvalidParameterError):
            resolve_chunk_nodes(bad)

    @pytest.mark.parametrize("raw", ["zero", "1.5", "-3", "0"])
    def test_rejects_bad_env_values(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_CHUNK_NODES", raw)
        with pytest.raises(InvalidParameterError):
            resolve_chunk_nodes()

"""Table-free implicit adjacency (PR 8): parity with materialised tables.

The contract under test: ``implicit_neighbor_block`` computes exactly the
rows the move tables would hold (``unrank -> apply generator -> rank``), the
``NeighborSource`` seam serves bit-identical adjacency from either side, and
the whole-graph kernels -- BFS, connectivity floods, masked BFS, the batched
embedding tally -- return the same results under ``REPRO_NEIGHBORS=implicit``
as from the tables, at every chunk size.  The vectorised ``rank_batch``
round-trips ``unrank_batch`` at degrees past the table ceiling, and the
int64 rank guard (``21!`` overflows int64) raises the canonical
:class:`~repro.exceptions.TableDegreeError` on every batch entry point.
"""

import math
import os

import numpy as np
import pytest

from repro.backend import NEIGHBOR_MODES, neighbor_mode
from repro.exceptions import InvalidParameterError, TableDegreeError
from repro.permutations import ranking
from repro.permutations.ranking import (
    MAX_INT64_RANK_DEGREE,
    MAX_TABLE_DEGREE,
    implicit_neighbor_block,
    move_tables,
    move_tables_for,
    permutation_rank,
    permutation_unrank,
    permutations_slice,
    rank_batch,
    star_position_generators,
    unrank_batch,
    within_int64_rank_degree,
)
from repro.simulation.rerouting import masked_bfs_distances
from repro.topology.cayley import (
    BubbleSortGraph,
    PancakeGraph,
    TranspositionTreeGraph,
)
from repro.topology.hypercube import Hypercube
from repro.topology.routing import (
    ImplicitNeighborSource,
    TableNeighborSource,
    as_neighbor_source,
    connected_under_alive_mask,
    index_bfs_distances,
    permutation_neighbor_source,
)
from repro.topology.star import StarGraph

HEAVY = bool(os.environ.get("REPRO_HEAVY_TESTS"))


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


class TestRankBatch:
    """The vectorised Lehmer encode, inverse of ``unrank_batch``."""

    @pytest.mark.parametrize("n", [8, 12, 13, 14])
    def test_round_trips_random_ranks(self, n):
        # Degrees straddle the table ceiling on purpose: 13 and 14 have no
        # tables at all, only the table-free batch pair.
        total = math.factorial(n)
        ranks = _rng(90 + n).integers(0, total, size=512, dtype=np.int64)
        perms = unrank_batch(ranks, n)
        assert perms.dtype == np.int8
        assert perms.shape == (512, n)
        back = rank_batch(perms)
        assert back.dtype == np.int64
        assert np.array_equal(back, ranks)

    def test_matches_scalar_rank_exhaustively(self):
        perms = permutations_slice(0, math.factorial(5), 5)
        assert np.array_equal(rank_batch(perms), np.arange(math.factorial(5)))

    def test_accepts_nested_sequences(self):
        rows = [(1, 0, 2, 3), (3, 2, 1, 0), (0, 1, 2, 3)]
        expected = [permutation_rank(row) for row in rows]
        assert list(map(int, rank_batch(rows))) == expected

    def test_rejects_non_batch_shape(self):
        with pytest.raises(InvalidParameterError):
            rank_batch(np.arange(4))

    def test_empty_batch(self):
        assert rank_batch(np.empty((0, 6), dtype=np.int8)).shape == (0,)


class TestUnrankBatchNormalisation:
    """Satellite 2: one ``np.asarray`` path, never a silent Python-list leg."""

    def test_list_generator_and_array_agree(self):
        reference = unrank_batch(np.array([0, 5, 17, 23], dtype=np.int64), 4)
        assert isinstance(reference, np.ndarray)
        for ranks in ([0, 5, 17, 23], iter((0, 5, 17, 23)), range(0, 24, 6)):
            out = unrank_batch(ranks, 4)
            assert isinstance(out, np.ndarray)
            assert out.dtype == np.int8
            if not isinstance(ranks, range):
                assert np.array_equal(out, reference)

    def test_rejects_two_dimensional_input(self):
        with pytest.raises(InvalidParameterError):
            unrank_batch(np.zeros((2, 2), dtype=np.int64), 4)

    def test_rejects_out_of_range_ranks(self):
        with pytest.raises(InvalidParameterError):
            unrank_batch([math.factorial(4)], 4)
        with pytest.raises(InvalidParameterError):
            unrank_batch([-1], 4)

    def test_matches_scalar_unrank(self):
        for n in (2, 5, 9, 13):
            ranks = [0, 1, math.factorial(n) - 1, math.factorial(n) // 3]
            rows = unrank_batch(ranks, n)
            for row, rank in zip(rows, ranks):
                assert tuple(map(int, row)) == permutation_unrank(rank, n)


class TestInt64RankGuard:
    """Satellite 1: ``21!`` overflows int64 -- every batch entry point raises."""

    def test_boundary(self):
        assert within_int64_rank_degree(MAX_INT64_RANK_DEGREE)
        assert not within_int64_rank_degree(MAX_INT64_RANK_DEGREE + 1)
        # The guarded degree really is where int64 dies.
        assert math.factorial(MAX_INT64_RANK_DEGREE) < 2**63
        assert math.factorial(MAX_INT64_RANK_DEGREE + 1) >= 2**63

    def test_every_batch_entry_point_raises(self):
        over = MAX_INT64_RANK_DEGREE + 1
        generators = star_position_generators(over)
        for call in (
            lambda: unrank_batch([0], over),
            lambda: rank_batch(np.zeros((1, over), dtype=np.int64)),
            lambda: permutations_slice(0, 1, over),
            lambda: implicit_neighbor_block([0], generators, over),
            lambda: ImplicitNeighborSource(generators, over),
        ):
            with pytest.raises(TableDegreeError) as excinfo:
                call()
            assert "int64" in str(excinfo.value)

    def test_table_free_helpers_work_past_the_table_ceiling(self):
        n = MAX_TABLE_DEGREE + 1  # 13: no table may exist at this degree
        rows = permutations_slice(0, 4, n)
        for rank, row in enumerate(rows):
            assert tuple(map(int, row)) == permutation_unrank(rank, n)


def _family_instances(n):
    """The four permutation families of the repo, with their generators."""
    tree = TranspositionTreeGraph(
        n, ((0, 1), (1, 2)) + tuple((1, j) for j in range(3, n))
    )
    return [
        ("star", StarGraph(n), star_position_generators(n)),
        ("pancake", PancakeGraph(n), PancakeGraph(n).generators),
        ("bubble-sort", BubbleSortGraph(n), BubbleSortGraph(n).generators),
        ("transposition-tree", tree, tree.generators),
    ]


class TestImplicitBlockParity:
    """``implicit_neighbor_block`` vs the materialised tables, all families."""

    @pytest.mark.parametrize("n", [3, 5, 8])
    def test_full_graph_parity_all_families(self, n):
        ranks = np.arange(math.factorial(n), dtype=np.int64)
        for name, _, generators in _family_instances(n):
            stacked = np.column_stack(
                [np.asarray(t) for t in move_tables_for(tuple(generators), n)]
            )
            block = implicit_neighbor_block(ranks, tuple(generators), n)
            assert block.dtype == np.int64
            assert np.array_equal(block, stacked), name

    def test_chunk_size_never_changes_the_block(self):
        generators = star_position_generators(5)
        ranks = _rng(7).integers(0, 120, size=64, dtype=np.int64)
        reference = implicit_neighbor_block(ranks, generators, 5)
        for chunk in (1, 3, 17, 10**9):
            assert np.array_equal(
                implicit_neighbor_block(ranks, generators, 5, chunk_nodes=chunk),
                reference,
            )

    def test_respects_chunk_env(self, monkeypatch):
        generators = star_position_generators(4)
        reference = implicit_neighbor_block(np.arange(24), generators, 4)
        monkeypatch.setenv("REPRO_CHUNK_NODES", "5")
        assert np.array_equal(
            implicit_neighbor_block(np.arange(24), generators, 4), reference
        )

    def test_generator_validation_matches_the_table_builders(self):
        # The same guards as move_tables_for: no identity, involutions only.
        with pytest.raises(InvalidParameterError):
            implicit_neighbor_block([0], ((0, 1, 2),), 3)
        with pytest.raises(InvalidParameterError):
            implicit_neighbor_block([0], ((1, 2, 0),), 3)

    def test_rejects_out_of_range_ranks(self):
        generators = star_position_generators(4)
        with pytest.raises(InvalidParameterError):
            implicit_neighbor_block([24], generators, 4)

    def test_memmap_tier_parity(self, tmp_path, monkeypatch):
        """Implicit blocks match the out-of-core memmap tables bit for bit."""
        monkeypatch.setenv("REPRO_TABLE_CACHE", str(tmp_path))
        monkeypatch.setattr(ranking, "MAX_DENSE_DEGREE", 4)
        move_tables_for.cache_clear()
        move_tables.cache_clear()
        try:
            generators = star_position_generators(6)
            streamed = move_tables_for(generators, 6)
            assert all(isinstance(t, np.memmap) for t in streamed)
            ranks = np.arange(math.factorial(6), dtype=np.int64)
            block = implicit_neighbor_block(ranks, generators, 6)
            assert np.array_equal(
                block, np.column_stack([np.asarray(t) for t in streamed])
            )
        finally:
            move_tables_for.cache_clear()
            move_tables.cache_clear()


class TestNeighborSourceSeam:
    """Both source flavours answer block queries identically."""

    def test_table_source_serves_table_rows(self):
        star = StarGraph(5)
        table = star.neighbor_index_table()
        source = TableNeighborSource(table)
        assert source.table is table
        assert source.num_nodes == 120
        assert source.width == 4
        indices = np.array([0, 17, 119], dtype=np.int64)
        assert np.array_equal(
            source.neighbor_block(indices), np.asarray(table)[indices]
        )

    def test_implicit_source_matches_table_source(self):
        for name, _, generators in _family_instances(5):
            table = np.column_stack(
                [np.asarray(t) for t in move_tables_for(tuple(generators), 5)]
            )
            table_source = TableNeighborSource(table)
            implicit = ImplicitNeighborSource(generators, 5)
            assert implicit.table is None
            assert implicit.num_nodes == table_source.num_nodes
            assert implicit.width == table_source.width
            indices = _rng(11).integers(0, 120, size=40, dtype=np.int64)
            assert np.array_equal(
                implicit.neighbor_block(indices),
                table_source.neighbor_block(indices),
            ), name
            # Scalar generator column and per-row generator arrays.
            for g in (0, implicit.width - 1):
                assert np.array_equal(
                    implicit.neighbor_along(indices, g),
                    table_source.neighbor_along(indices, g),
                ), name
            per_row = _rng(12).integers(0, implicit.width, size=40)
            assert np.array_equal(
                implicit.neighbor_along(indices, per_row),
                table_source.neighbor_along(indices, per_row),
            ), name

    def test_as_neighbor_source(self):
        star = StarGraph(4)
        table = star.neighbor_index_table()
        wrapped = as_neighbor_source(table)
        assert isinstance(wrapped, TableNeighborSource)
        implicit = ImplicitNeighborSource(star_position_generators(4), 4)
        assert as_neighbor_source(implicit) is implicit


class TestModeSelection:
    """``REPRO_NEIGHBORS`` decides which source a permutation graph serves."""

    def _fail_supplier(self):
        raise AssertionError("table_supplier must not be called in implicit mode")

    def test_mode_values(self, monkeypatch):
        assert neighbor_mode() == "auto"
        for mode in NEIGHBOR_MODES:
            monkeypatch.setenv("REPRO_NEIGHBORS", mode)
            assert neighbor_mode() == mode
        monkeypatch.setenv("REPRO_NEIGHBORS", "IMPLICIT")
        assert neighbor_mode() == "implicit"  # case-insensitive, like backend

    def test_invalid_mode_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_NEIGHBORS", "magic")
        with pytest.raises(InvalidParameterError):
            neighbor_mode()

    def test_auto_serves_tables_in_range(self):
        source = permutation_neighbor_source(
            star_position_generators(5), 5, StarGraph(5).neighbor_index_table
        )
        assert isinstance(source, TableNeighborSource)

    def test_auto_goes_implicit_past_the_table_ceiling(self):
        n = MAX_TABLE_DEGREE + 1
        source = permutation_neighbor_source(
            star_position_generators(n), n, self._fail_supplier
        )
        assert isinstance(source, ImplicitNeighborSource)
        assert source.num_nodes == math.factorial(n)

    def test_implicit_mode_never_touches_the_supplier(self, monkeypatch):
        monkeypatch.setenv("REPRO_NEIGHBORS", "implicit")
        source = permutation_neighbor_source(
            star_position_generators(5), 5, self._fail_supplier
        )
        assert isinstance(source, ImplicitNeighborSource)

    def test_table_mode_is_forced(self, monkeypatch):
        monkeypatch.setenv("REPRO_NEIGHBORS", "table")
        source = permutation_neighbor_source(
            star_position_generators(5), 5, StarGraph(5).neighbor_index_table
        )
        assert isinstance(source, TableNeighborSource)

    def test_topology_entry_points(self, monkeypatch):
        monkeypatch.setenv("REPRO_NEIGHBORS", "implicit")
        for topology in (StarGraph(4), PancakeGraph(4), BubbleSortGraph(4)):
            assert isinstance(topology.neighbor_source(), ImplicitNeighborSource)
        # Non-permutation topologies have no implicit form: always the table.
        assert isinstance(Hypercube(3).neighbor_source(), TableNeighborSource)
        monkeypatch.delenv("REPRO_NEIGHBORS")
        assert isinstance(StarGraph(4).neighbor_source(), TableNeighborSource)


class TestWholeGraphParityUnderImplicit:
    """Acceptance: implicit BFS/connectivity bit-identical at every chunk size."""

    @pytest.mark.parametrize("n", [5, 6, 7])
    def test_bfs_distances(self, n, monkeypatch):
        for name, topology, _generators in _family_instances(n):
            table = topology.neighbor_index_table()
            reference = np.asarray(
                index_bfs_distances(table, topology.num_nodes, 1)
            )
            monkeypatch.setenv("REPRO_NEIGHBORS", "implicit")
            source = topology.neighbor_source()
            assert source.table is None
            for chunk in (1, 97, 10**9) if n == 5 else (97, 10**9):
                monkeypatch.setenv("REPRO_CHUNK_NODES", str(chunk))
                got = np.asarray(
                    index_bfs_distances(source, topology.num_nodes, 1)
                )
                assert got.dtype == reference.dtype
                assert np.array_equal(got, reference), name
            monkeypatch.delenv("REPRO_CHUNK_NODES")
            monkeypatch.delenv("REPRO_NEIGHBORS")

    def test_connectivity_flood(self, monkeypatch):
        star = StarGraph(5)
        neighbor_ranks = [star.node_index(v) for v in star.neighbors(star.identity)]
        for dead in (neighbor_ranks, neighbor_ranks[:-1], []):
            alive = np.ones(star.num_nodes, dtype=bool)
            alive[list(dead)] = False
            reference = connected_under_alive_mask(star, alive)
            monkeypatch.setenv("REPRO_NEIGHBORS", "implicit")
            assert connected_under_alive_mask(star, alive) == reference
            monkeypatch.delenv("REPRO_NEIGHBORS")

    def test_masked_bfs(self, monkeypatch):
        star = StarGraph(5)
        alive = np.ones(star.num_nodes, dtype=bool)
        alive[[3, 17, 44, 90]] = False
        reference = np.asarray(masked_bfs_distances(star, 0, alive))
        monkeypatch.setenv("REPRO_NEIGHBORS", "implicit")
        for chunk in (13, 10**9):
            monkeypatch.setenv("REPRO_CHUNK_NODES", str(chunk))
            assert np.array_equal(
                np.asarray(masked_bfs_distances(star, 0, alive)), reference
            )

    def test_embedding_tally(self, monkeypatch):
        from repro.embedding.metrics import (
            measure_embedding,
            measure_embedding_reference,
        )
        from repro.embedding.mesh_to_star import MeshToStarEmbedding

        for n in (3, 4, 5):
            reference = measure_embedding(MeshToStarEmbedding(n))
            monkeypatch.setenv("REPRO_NEIGHBORS", "implicit")
            implicit = measure_embedding(MeshToStarEmbedding(n))
            monkeypatch.delenv("REPRO_NEIGHBORS")
            assert implicit == reference
            assert implicit == measure_embedding_reference(MeshToStarEmbedding(n))

    @pytest.mark.skipif(
        not HEAVY,
        reason="S_8-S_10 implicit sweeps take minutes; set REPRO_HEAVY_TESTS=1",
    )
    @pytest.mark.parametrize("n", [8, 9, 10])
    def test_bfs_distances_heavy_degrees(self, n, monkeypatch):
        star = StarGraph(n)
        reference = np.asarray(
            index_bfs_distances(star.neighbor_index_table(), star.num_nodes, 0)
        )
        monkeypatch.setenv("REPRO_NEIGHBORS", "implicit")
        source = star.neighbor_source()
        assert source.table is None
        for chunk in (4096, 10**9):
            monkeypatch.setenv("REPRO_CHUNK_NODES", str(chunk))
            got = np.asarray(index_bfs_distances(source, star.num_nodes, 0))
            assert np.array_equal(got, reference)

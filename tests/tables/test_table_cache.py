"""The on-disk memmap move-table cache (repro.tables).

The contract under test: tables served from the cache are bit-identical to
the in-RAM tables, the cache is content-addressed and atomic, and the memmap
tier plugs into ``move_tables_for`` / ``neighbor_index_table`` without any
consumer changes (exercised here by lowering ``MAX_DENSE_DEGREE`` so the
out-of-core path runs at test-sized degrees).
"""

import json
import os

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError, TableDegreeError
from repro.experiments.cli import main as cli_main
from repro.permutations import ranking
from repro.permutations.ranking import (
    move_tables,
    move_tables_for,
    star_position_generators,
)
from repro.tables import (
    build_move_tables,
    clear_tables,
    has_move_tables,
    list_tables,
    memmap_move_tables,
    open_move_tables,
    stacked_neighbor_table,
    table_cache_dir,
    table_key,
    table_path,
)


@pytest.fixture()
def cache_dir(tmp_path, monkeypatch):
    """A throwaway cache dir installed as REPRO_TABLE_CACHE.

    The per-(generators, n) lru caches are cleared around each use so a
    memmap cached by one test never leaks its (deleted) backing file into
    another.
    """
    monkeypatch.setenv("REPRO_TABLE_CACHE", str(tmp_path))
    move_tables_for.cache_clear()
    move_tables.cache_clear()
    yield tmp_path
    move_tables_for.cache_clear()
    move_tables.cache_clear()


class TestAddressing:
    def test_key_is_canonical_and_input_sensitive(self):
        star5 = star_position_generators(5)
        assert table_key(star5, 5) == table_key(tuple(tuple(g) for g in star5), 5)
        assert table_key(star5, 5) != table_key(star5[:-1], 5)
        assert table_key(star_position_generators(6), 6) != table_key(star5, 5)

    def test_path_embeds_degree_and_key(self, cache_dir):
        generators = star_position_generators(5)
        path = table_path(generators, 5)
        assert path.parent == cache_dir
        assert path.name == f"moves__n05__{table_key(generators, 5)}.npy"

    def test_env_override_and_default(self, cache_dir, monkeypatch):
        assert table_cache_dir() == cache_dir
        monkeypatch.delenv("REPRO_TABLE_CACHE")
        default = table_cache_dir()
        assert default.name == "tables"
        assert default.parent.name == "repro-star"


class TestBuildAndOpen:
    def test_memmap_tables_bit_identical_to_in_ram(self, cache_dir):
        for n in (2, 3, 5, 6, 8):
            generators = star_position_generators(n)
            dense = move_tables_for(generators, n)
            streamed = memmap_move_tables(generators, n)
            assert len(streamed) == len(dense)
            for in_ram, on_disk in zip(dense, streamed):
                assert on_disk.dtype == np.int64
                assert np.array_equal(np.asarray(in_ram), np.asarray(on_disk))

    def test_generic_generator_sets_cache_separately(self, cache_dir):
        pancake = ((1, 0, 2, 3), (2, 1, 0, 3), (3, 2, 1, 0))
        dense = move_tables_for(pancake, 4)
        streamed = memmap_move_tables(pancake, 4)
        for in_ram, on_disk in zip(dense, streamed):
            assert np.array_equal(np.asarray(in_ram), np.asarray(on_disk))
        assert len(list_tables()) == 1

    def test_layout_is_node_major_column_views(self, cache_dir):
        generators = star_position_generators(5)
        mm = open_move_tables(generators, 5)
        assert mm.shape == (120, 4)
        assert not mm.flags.writeable
        views = memmap_move_tables(generators, 5)
        for g, view in enumerate(views):
            assert view.base is not None
            assert np.array_equal(view, mm[:, g])

    def test_build_is_chunk_size_invariant(self, cache_dir):
        generators = star_position_generators(6)
        reference = np.asarray(open_move_tables(generators, 6))
        for chunk in (1, 7, 64, 10**9):
            clear_tables()
            path = build_move_tables(generators, 6, chunk_nodes=chunk)
            assert np.array_equal(np.asarray(np.load(path)), reference)

    def test_build_reuses_and_force_rebuilds(self, cache_dir):
        generators = star_position_generators(4)
        path = build_move_tables(generators, 4)
        first_stat = path.stat().st_mtime_ns
        assert build_move_tables(generators, 4) == path
        assert path.stat().st_mtime_ns == first_stat  # untouched cache hit
        build_move_tables(generators, 4, force=True)
        assert np.array_equal(
            np.asarray(np.load(path)),
            np.column_stack([np.asarray(t) for t in move_tables_for(generators, 4)]),
        )

    def test_build_leaves_no_tmp_files(self, cache_dir):
        build_move_tables(star_position_generators(5), 5)
        leftovers = [p.name for p in cache_dir.iterdir() if ".tmp-" in p.name]
        assert leftovers == []

    def test_meta_sidecar_records_the_inputs(self, cache_dir):
        generators = star_position_generators(5)
        path = build_move_tables(generators, 5)
        meta = json.loads(path.with_name(path.name + ".meta.json").read_text())
        assert meta["n"] == 5
        assert meta["num_generators"] == 4
        assert meta["key"] == table_key(generators, 5)
        assert tuple(tuple(g) for g in meta["generators"]) == generators
        assert meta["shape"] == [120, 4]

    def test_has_move_tables(self, cache_dir):
        generators = star_position_generators(4)
        assert not has_move_tables(generators, 4)
        build_move_tables(generators, 4)
        assert has_move_tables(generators, 4)

    def test_build_rejects_over_ceiling_and_bad_generators(self, cache_dir):
        with pytest.raises(TableDegreeError):
            build_move_tables(((1, 0) + tuple(range(2, 13)),), 13)
        with pytest.raises(InvalidParameterError):
            build_move_tables(((1, 2, 0),), 3)  # not an involution


class TestListAndClear:
    def test_list_and_clear_roundtrip(self, cache_dir):
        build_move_tables(star_position_generators(4), 4)
        build_move_tables(star_position_generators(5), 5)
        entries = list_tables()
        assert [entry["n"] for entry in entries] == [4, 5]
        assert all(entry["bytes"] > 0 for entry in entries)
        assert clear_tables(degree=4) == 1
        assert [entry["n"] for entry in list_tables()] == [5]
        assert clear_tables() == 1
        assert list_tables() == []
        assert clear_tables() == 0  # empty (and missing) dirs clear to zero

    def test_list_survives_a_damaged_sidecar(self, cache_dir):
        path = build_move_tables(star_position_generators(4), 4)
        path.with_name(path.name + ".meta.json").write_text("{not json")
        (entry,) = list_tables()
        assert entry["meta"] is None
        assert entry["file"] == path.name

    def test_list_of_missing_cache_dir_is_empty(self, tmp_path):
        assert list_tables(tmp_path / "never-created") == []


class TestStackedNeighborTable:
    def test_returns_shared_base_without_copy(self, cache_dir):
        views = memmap_move_tables(star_position_generators(5), 5)
        stacked = stacked_neighbor_table(views)
        assert stacked is views[0].base
        assert np.array_equal(
            stacked, np.column_stack([np.asarray(v) for v in views])
        )

    def test_stacks_plain_tuples_read_only(self):
        tables = move_tables(5)
        stacked = stacked_neighbor_table(tables)
        assert stacked.dtype == np.int64
        assert not stacked.flags.writeable
        assert np.array_equal(stacked, np.column_stack(tables))

    def test_empty_tuple(self):
        assert stacked_neighbor_table(()).shape == (0, 0)


class TestMemmapTierIntegration:
    """Lower MAX_DENSE_DEGREE so the out-of-core tier runs at tiny degrees."""

    @pytest.fixture()
    def dense_ceiling_4(self, cache_dir, monkeypatch):
        monkeypatch.setattr(ranking, "MAX_DENSE_DEGREE", 4)
        yield
        # monkeypatch restores the constant; the cache_dir fixture clears the
        # lru caches that may have trapped memmap-tier entries.

    def test_move_tables_for_streams_above_the_dense_tier(self, dense_ceiling_4):
        from repro.permutations.generators import apply_star_generator
        from repro.permutations.ranking import (
            all_permutations,
            permutation_rank,
        )

        generators = star_position_generators(5)
        streamed = move_tables_for(generators, 5)
        assert all(isinstance(t, np.memmap) for t in streamed)
        assert has_move_tables(generators, 5)
        # Oracle: rank-by-rank tuple application, no array machinery at all.
        for j, table in enumerate(streamed, start=1):
            for rank, perm in enumerate(all_permutations(5)):
                assert int(table[rank]) == permutation_rank(
                    apply_star_generator(perm, j)
                )

    def test_star_graph_services_ride_the_memmap_tier(self, dense_ceiling_4):
        from repro.topology.routing import bfs_distances_from, star_distances_from
        from repro.topology.star import StarGraph

        star = StarGraph(5)
        table = star.neighbor_index_table()
        assert isinstance(table, np.memmap)  # the shared base, not a copy
        assert table.shape == (120, 4)
        closed_form = np.asarray(star_distances_from(star.identity))
        swept = np.asarray(
            bfs_distances_from(star, star.identity, use_closed_form=False)
        )
        assert np.array_equal(closed_form, swept)

    def test_cayley_graph_rides_the_memmap_tier(self, dense_ceiling_4):
        from repro.topology.cayley import PancakeGraph

        pancake = PancakeGraph(5)
        table = pancake.neighbor_index_table()
        assert isinstance(table, np.memmap)
        # Spot-check adjacency against the tuple API.
        node = pancake.node_from_index(17)
        neighbor_ranks = sorted(int(r) for r in table[17])
        assert neighbor_ranks == sorted(
            pancake.node_index(v) for v in pancake.neighbors(node)
        )


class TestTablesCli:
    def test_build_list_clear_roundtrip(self, cache_dir, capsys):
        assert cli_main(["tables", "build", "5"]) == 0
        built_path = capsys.readouterr().out.strip()
        assert built_path.endswith(".npy")
        assert os.path.exists(built_path)

        assert cli_main(["tables", "list", "--json"]) == 0
        listing = json.loads(capsys.readouterr().out)
        assert len(listing) == 1
        assert listing[0]["n"] == 5

        assert cli_main(["tables", "list"]) == 0
        assert "n=5" in capsys.readouterr().out

        assert cli_main(["tables", "clear", "--degree", "4"]) == 0
        assert "removed 0" in capsys.readouterr().out
        assert cli_main(["tables", "clear"]) == 0
        assert "removed 1" in capsys.readouterr().out
        assert list_tables() == []

    def test_explicit_cache_flag_beats_env(self, cache_dir, tmp_path_factory, capsys):
        other = tmp_path_factory.mktemp("other-cache")
        assert cli_main(["tables", "build", "4", "--cache", str(other)]) == 0
        capsys.readouterr()
        assert list_tables(other)[0]["n"] == 4
        assert list_tables() == []  # env-pointed cache untouched

    def test_over_ceiling_build_exits_2(self, cache_dir, capsys):
        assert cli_main(["tables", "build", "13"]) == 2
        err = capsys.readouterr().err
        assert "n <= 12" in err

"""Unit tests for the telemetry recorder, summariser and logging shim.

The recorder is process-global, so every test runs under an autouse fixture
that strips ``REPRO_TRACE`` and disables the recorder afterwards -- no test
may leak an enabled recorder into the rest of the suite.
"""

import json
import logging
import time

import pytest

from repro import telemetry
from repro.exceptions import TraceError


@pytest.fixture(autouse=True)
def _clean_recorder(monkeypatch):
    monkeypatch.delenv(telemetry.TRACE_ENV, raising=False)
    telemetry.disable()
    yield
    telemetry.disable()


class TestRecorderLifecycle:
    def test_disabled_by_default(self):
        assert telemetry.trace_enabled() is False
        assert telemetry.trace_path() is None

    def test_enable_disable_roundtrip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        telemetry.enable(path)
        assert telemetry.trace_enabled() is True
        assert telemetry.trace_path() == str(path)
        telemetry.disable()
        assert telemetry.trace_enabled() is False
        assert telemetry.trace_path() is None

    def test_refresh_from_env(self, tmp_path, monkeypatch):
        path = tmp_path / "env.jsonl"
        monkeypatch.setenv(telemetry.TRACE_ENV, str(path))
        telemetry.refresh_from_env()
        assert telemetry.trace_enabled() is True
        assert telemetry.trace_path() == str(path)
        monkeypatch.delenv(telemetry.TRACE_ENV)
        telemetry.refresh_from_env()
        assert telemetry.trace_enabled() is False

    def test_blank_env_value_stays_disabled(self, monkeypatch):
        monkeypatch.setenv(telemetry.TRACE_ENV, "   ")
        telemetry.refresh_from_env()
        assert telemetry.trace_enabled() is False


class TestDisabledPath:
    def test_span_returns_shared_noop(self):
        sp = telemetry.span("kernel.bfs", degree=9)
        assert sp is telemetry.NOOP_SPAN
        # The no-op span supports the full live-span surface.
        with sp as inner:
            assert inner is sp
            assert inner.add(extra=1) is sp
        assert sp.started == 0.0

    def test_counters_and_gauges_are_noops(self, tmp_path):
        telemetry.add_counter("store.write", bytes=123)
        telemetry.set_gauge("campaign.trials_per_second", 42.0)
        telemetry.emit_span("runner.shard", 0.5, status="ran")
        # Nothing was configured, so nothing may exist on disk.
        assert list(tmp_path.iterdir()) == []

    def test_tight_loop_overhead_guard(self):
        # 200k disabled span() calls must stay well under a second: the
        # disabled path is one attribute check plus returning a singleton.
        started = time.perf_counter()
        for _ in range(200_000):
            telemetry.span("kernel.bfs")
        elapsed = time.perf_counter() - started
        assert elapsed < 1.0, f"disabled span() too slow: {elapsed:.3f}s"


class TestEventEmission:
    def _events(self, path):
        events = telemetry.load_trace(path)
        telemetry.validate_trace_events(events)
        return events

    def test_span_event_schema(self, tmp_path):
        path = tmp_path / "t.jsonl"
        telemetry.enable(path)
        with telemetry.span("unit.op", degree=5) as sp:
            sp.add(found=3)
        telemetry.disable()
        (event,) = self._events(path)
        assert event["event"] == "span"
        assert event["name"] == "unit.op"
        assert event["seconds"] >= 0
        assert event["attrs"] == {"degree": 5, "found": 3}

    def test_counter_and_gauge_events(self, tmp_path):
        path = tmp_path / "t.jsonl"
        telemetry.enable(path)
        telemetry.add_counter("unit.hits", bytes=64)
        telemetry.add_counter("unit.hits", value=2)
        telemetry.set_gauge("unit.rate", 12.5, family="star")
        telemetry.disable()
        events = self._events(path)
        assert [e["event"] for e in events] == ["counter", "counter", "gauge"]
        assert events[0]["value"] == 1 and events[0]["attrs"]["bytes"] == 64
        assert events[1]["value"] == 2
        assert events[2]["value"] == 12.5

    def test_emit_span_records_caller_measured_duration(self, tmp_path):
        path = tmp_path / "t.jsonl"
        telemetry.enable(path)
        telemetry.emit_span("runner.shard", 1.25, status="ran", attempts=1)
        telemetry.disable()
        (event,) = self._events(path)
        assert event["event"] == "span"
        assert event["seconds"] == 1.25
        assert event["attrs"]["status"] == "ran"

    def test_span_records_error_type_on_exception(self, tmp_path):
        path = tmp_path / "t.jsonl"
        telemetry.enable(path)
        with pytest.raises(ValueError):
            with telemetry.span("unit.failing"):
                raise ValueError("boom")
        telemetry.disable()
        (event,) = self._events(path)
        assert event["attrs"]["error"] == "ValueError"

    def test_numpy_scalars_become_json_numbers(self, tmp_path):
        np = pytest.importorskip("numpy")
        path = tmp_path / "t.jsonl"
        telemetry.enable(path)
        telemetry.add_counter("unit.np", n=np.int64(7), rate=np.float64(0.5))
        telemetry.disable()
        (event,) = self._events(path)
        assert event["attrs"] == {"n": 7, "rate": 0.5}

    def test_non_scalar_attrs_become_strings(self, tmp_path):
        path = tmp_path / "t.jsonl"
        telemetry.enable(path)
        telemetry.add_counter("unit.weird", shape=(2, 3))
        telemetry.disable()
        (event,) = self._events(path)
        assert event["attrs"]["shape"] == "(2, 3)"

    def test_events_append_across_reconfigure(self, tmp_path):
        path = tmp_path / "t.jsonl"
        telemetry.enable(path)
        telemetry.add_counter("unit.first")
        telemetry.disable()
        telemetry.enable(path)
        telemetry.add_counter("unit.second")
        telemetry.disable()
        assert [e["name"] for e in self._events(path)] == [
            "unit.first",
            "unit.second",
        ]


class TestLoadAndValidate:
    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(TraceError, match="no trace file"):
            telemetry.load_trace(tmp_path / "absent.jsonl")

    def test_bad_json_line_raises_with_lineno(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"event": "counter"}\nnot json\n')
        with pytest.raises(TraceError, match=":2:"):
            telemetry.load_trace(path)

    def test_non_object_line_raises(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("[1, 2, 3]\n")
        with pytest.raises(TraceError, match="not an object"):
            telemetry.load_trace(path)

    def test_blank_lines_tolerated(self, tmp_path):
        path = tmp_path / "t.jsonl"
        telemetry.enable(path)
        telemetry.add_counter("unit.one")
        telemetry.disable()
        path.write_text(path.read_text() + "\n\n")
        assert len(telemetry.load_trace(path)) == 1

    def _valid_event(self, **overrides):
        event = {
            "event": "counter",
            "name": "unit.x",
            "value": 1,
            "ts": 123.0,
            "pid": 42,
            "attrs": {},
        }
        event.update(overrides)
        return event

    def test_valid_event_passes(self):
        telemetry.validate_trace_events([self._valid_event()])

    @pytest.mark.parametrize("key", ["event", "name", "ts", "pid", "attrs"])
    def test_missing_common_key(self, key):
        event = self._valid_event()
        del event[key]
        with pytest.raises(TraceError, match=f"missing keys: {key}"):
            telemetry.validate_trace_events([event])

    def test_unknown_event_type(self):
        with pytest.raises(TraceError, match="unknown event type"):
            telemetry.validate_trace_events([self._valid_event(event="timer")])

    def test_span_requires_non_negative_seconds(self):
        bad = self._valid_event(event="span")
        del bad["value"]
        with pytest.raises(TraceError, match="seconds"):
            telemetry.validate_trace_events([bad])
        bad["seconds"] = -0.1
        with pytest.raises(TraceError, match="seconds"):
            telemetry.validate_trace_events([bad])

    def test_counter_requires_numeric_value(self):
        with pytest.raises(TraceError, match="numeric 'value'"):
            telemetry.validate_trace_events([self._valid_event(value="many")])

    def test_bad_field_types(self):
        with pytest.raises(TraceError, match="name"):
            telemetry.validate_trace_events([self._valid_event(name="")])
        with pytest.raises(TraceError, match="pid"):
            telemetry.validate_trace_events([self._valid_event(pid="42")])
        with pytest.raises(TraceError, match="attrs"):
            telemetry.validate_trace_events([self._valid_event(attrs=[])])


class TestSummarize:
    def _span(self, name, seconds):
        return {
            "event": "span",
            "name": name,
            "seconds": seconds,
            "ts": 0.0,
            "pid": 1,
            "attrs": {},
        }

    def test_span_aggregation_percentiles(self):
        events = [self._span("op", s / 100.0) for s in range(1, 101)]
        summary = telemetry.summarize_trace(events)
        stats = summary["spans"]["op"]
        assert stats["count"] == 100
        assert stats["min"] == 0.01
        assert stats["max"] == 1.0
        # Nearest-rank over 100 evenly spaced values.
        assert stats["p50"] == pytest.approx(0.5, abs=0.011)
        assert stats["p99"] == pytest.approx(0.99, abs=0.011)
        assert stats["total_seconds"] == pytest.approx(50.5)

    def test_counter_totals_and_bytes(self):
        events = [
            {
                "event": "counter",
                "name": "store.write",
                "value": 1,
                "ts": 0.0,
                "pid": 1,
                "attrs": {"bytes": size},
            }
            for size in (100, 250)
        ]
        summary = telemetry.summarize_trace(events)
        stats = summary["counters"]["store.write"]
        assert stats == {"count": 2, "total": 2.0, "bytes": 350.0}

    def test_gauge_stats(self):
        events = [
            {
                "event": "gauge",
                "name": "rate",
                "value": value,
                "ts": 0.0,
                "pid": 1,
                "attrs": {},
            }
            for value in (10.0, 30.0, 20.0)
        ]
        stats = telemetry.summarize_trace(events)["gauges"]["rate"]
        assert stats["last"] == 20.0
        assert stats["min"] == 10.0
        assert stats["max"] == 30.0
        assert stats["mean"] == pytest.approx(20.0)

    def test_pids_collected(self):
        events = [self._span("op", 0.1)]
        events.append(dict(self._span("op", 0.2), pid=2))
        summary = telemetry.summarize_trace(events)
        assert summary["pids"] == [1, 2]
        assert summary["events"] == 2

    def test_render_contains_sections_and_names(self):
        events = [
            self._span("kernel.bfs", 0.25),
            {
                "event": "counter",
                "name": "store.hit",
                "value": 1,
                "ts": 0.0,
                "pid": 1,
                "attrs": {},
            },
            {
                "event": "gauge",
                "name": "rate",
                "value": 5.0,
                "ts": 0.0,
                "pid": 1,
                "attrs": {},
            },
        ]
        text = telemetry.render_summary(
            telemetry.summarize_trace(events), title="my trace"
        )
        assert "my trace" in text
        assert "spans:" in text and "kernel.bfs" in text
        assert "counters:" in text and "store.hit" in text
        assert "gauges:" in text and "rate" in text

    def test_summary_is_json_safe(self):
        summary = telemetry.summarize_trace([self._span("op", 0.5)])
        json.dumps(summary)  # must not raise


class TestLogshim:
    def test_get_logger_namespacing(self):
        logger = telemetry.get_logger("tables")
        assert logger.name == "repro.tables"

    def test_root_logger_has_null_handler(self):
        root = logging.getLogger(telemetry.LOGGER_NAME)
        assert any(
            isinstance(handler, logging.NullHandler) for handler in root.handlers
        )

    def test_enable_stderr_logging_idempotent(self):
        first = telemetry.enable_stderr_logging()
        second = telemetry.enable_stderr_logging()
        try:
            assert first is second
            root = logging.getLogger(telemetry.LOGGER_NAME)
            stream_handlers = [
                handler
                for handler in root.handlers
                if isinstance(handler, logging.StreamHandler)
                and not isinstance(handler, logging.NullHandler)
            ]
            assert len(stream_handlers) == 1
        finally:
            telemetry.disable_stderr_logging()

    def test_handler_formats_with_logger_name(self, capsys):
        handler = telemetry.enable_stderr_logging()
        try:
            telemetry.get_logger("tables").info("building something")
            assert "[repro.tables] building something" in capsys.readouterr().err
        finally:
            telemetry.disable_stderr_logging()

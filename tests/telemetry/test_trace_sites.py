"""Every instrumented site emits schema-valid events -- and changes nothing.

Two contracts per layer:

* **Coverage** -- enabling the recorder around a representative call of each
  instrumented site (kernels, table cache, artifact store, sharded runner,
  simulation campaigns, pair sampling) produces events that pass
  :func:`repro.telemetry.validate_trace_events` and carry the documented
  names and attributes.
* **Parity** -- tracing is observation only: artifact payloads and keys are
  byte-identical with tracing on or off, serially and with ``jobs=2``.
"""

import json

import pytest

np = pytest.importorskip("numpy")

from repro import telemetry
from repro.embedding.metrics import measure_embedding
from repro.embedding.mesh_to_star import MeshToStarEmbedding
from repro.experiments.artifacts import ArtifactStore
from repro.experiments.runner import plan_shards, run_shards
from repro.permutations.ranking import star_position_generators
from repro.simulation.campaign import connectivity_campaign, stretch_campaign
from repro.simulation.sampling import sampled_pair_distances
from repro.tables import build_move_tables, open_move_tables
from repro.topology.routing import index_bfs_distances, star_distances_from
from repro.topology.star import StarGraph


@pytest.fixture(autouse=True)
def _clean_recorder(monkeypatch):
    monkeypatch.delenv(telemetry.TRACE_ENV, raising=False)
    telemetry.disable()
    yield
    telemetry.disable()


@pytest.fixture
def trace(tmp_path):
    """Enable tracing into a tmp file; yield a loader of validated events."""
    path = tmp_path / "trace.jsonl"
    telemetry.enable(path)

    def events():
        telemetry.disable()
        loaded = telemetry.load_trace(path)
        telemetry.validate_trace_events(loaded)
        return loaded

    yield events
    telemetry.disable()


def _by_name(events, name):
    return [e for e in events if e["name"] == name]


class TestKernelSites:
    def test_distance_sweep_span(self, trace):
        star_distances_from(tuple(range(5)))
        (event,) = _by_name(trace(), "kernel.distance_sweep")
        attrs = event["attrs"]
        assert attrs["degree"] == 5
        assert attrs["num_nodes"] == 120
        assert attrs["tier"] == "dense"
        assert attrs["backend"] in ("numpy", "numba")
        assert attrs["chunks"] >= 1

    def test_bfs_span_table_source(self, trace):
        star = StarGraph(4)
        index_bfs_distances(star.neighbor_index_table(), star.num_nodes, 0)
        (event,) = _by_name(trace(), "kernel.bfs")
        attrs = event["attrs"]
        assert attrs["num_nodes"] == 24
        assert attrs["neighbor_source"] == "table"
        assert attrs["masked"] is False
        assert attrs["mode"] in ("frontier", "whole_graph")
        assert attrs["reached"] == 24
        if attrs["mode"] == "frontier":
            assert attrs["chunks"] >= 1 and attrs["levels"] >= 1

    def test_bfs_span_implicit_source(self, trace, monkeypatch):
        monkeypatch.setenv("REPRO_NEIGHBORS", "implicit")
        star = StarGraph(4)
        source = star.neighbor_source()
        assert source.table is None
        index_bfs_distances(source, star.num_nodes, 0)
        (event,) = _by_name(trace(), "kernel.bfs")
        assert event["attrs"]["neighbor_source"] == "implicit"

    def test_bfs_span_masked(self, trace):
        star = StarGraph(4)
        alive = np.ones(star.num_nodes, dtype=bool)
        alive[5] = False
        index_bfs_distances(
            star.neighbor_index_table(), star.num_nodes, 0, alive_mask=alive
        )
        (event,) = _by_name(trace(), "kernel.bfs")
        assert event["attrs"]["masked"] is True

    def test_embedding_tally_span(self, trace):
        # A fresh embedding: the edge data caches on the instance, so reused
        # fixtures would skip the instrumented build.
        measure_embedding(MeshToStarEmbedding(4))
        (event,) = _by_name(trace(), "kernel.embedding_tally")
        attrs = event["attrs"]
        assert attrs["degree"] == 4
        assert attrs["num_nodes"] == 24
        assert attrs["neighbor_source"] in ("table", "implicit")
        assert attrs["guest_edges"] > 0
        assert attrs["chunks"] >= 1


class TestTableSites:
    def test_build_cache_hit_open(self, trace, tmp_path):
        generators = star_position_generators(5)
        cache = tmp_path / "tables"
        build_move_tables(generators, 5, cache_dir=cache)
        build_move_tables(generators, 5, cache_dir=cache)  # reuse
        open_move_tables(generators, 5, cache_dir=cache)
        events = trace()

        (build,) = _by_name(events, "tables.build")
        assert build["attrs"]["n"] == 5
        assert build["attrs"]["num_generators"] == len(generators)
        assert build["attrs"]["bytes"] == 120 * len(generators) * 8

        # Two hits: the explicit rebuild, and open_move_tables routing
        # through build_move_tables against the existing file.
        hits = _by_name(events, "tables.cache_hit")
        assert len(hits) == 2
        assert all(e["attrs"]["n"] == 5 and e["attrs"]["bytes"] > 0 for e in hits)

        (opened,) = _by_name(events, "tables.open")
        assert opened["attrs"]["file"] == build["attrs"]["file"]


class TestRunnerSites:
    def test_shard_spans_and_store_counters(self, trace, tmp_path):
        store = ArtifactStore(tmp_path / "results")
        shards = plan_shards(["FIG4", "LEM1"], profile="fast")
        first = run_shards(shards, store=store)
        assert not first.failed
        second = run_shards(shards, store=store)
        assert len(second.cached) == 2
        events = trace()

        spans = _by_name(events, "runner.shard")
        assert len(spans) == 4
        first_pass, second_pass = spans[:2], spans[2:]
        assert {e["attrs"]["status"] for e in first_pass} == {"ran"}
        assert {e["attrs"]["status"] for e in second_pass} == {"cached"}
        for event in first_pass:
            assert event["attrs"]["attempts"] == 1
            assert event["seconds"] > 0
        for event in second_pass:
            assert event["attrs"]["attempts"] == 0
            assert event["seconds"] == 0
        assert {e["attrs"]["experiment"] for e in first_pass} == {"FIG4", "LEM1"}

        assert len(_by_name(events, "store.miss")) == 2
        writes = _by_name(events, "store.write")
        assert len(writes) == 2
        assert all(e["attrs"]["bytes"] > 0 for e in writes)
        hits = _by_name(events, "store.hit")
        assert len(hits) == 2
        assert {e["attrs"]["key"] for e in hits} == {s.key for s in shards}

    def test_metrics_uniform_across_paths(self, tmp_path):
        shards = plan_shards(["FIG4"], profile="fast")
        store = ArtifactStore(tmp_path / "results")
        reports = {
            "no_store": run_shards(shards),
            "fresh": run_shards(shards, store=store),
            "all_cached": run_shards(shards, store=store),
            "parallel": run_shards(plan_shards(["FIG4", "LEM1"], "fast"), jobs=2),
        }
        for label, report in reports.items():
            metrics = report.metrics
            assert set(metrics) == {
                "shards",
                "ran",
                "cached",
                "failed",
                "retries",
                "elapsed_seconds",
                "shard_timings",
            }, label
            assert metrics["shards"] == len(metrics["shard_timings"])
            assert metrics["elapsed_seconds"] == report.elapsed_seconds
            assert report.elapsed_seconds >= 0
            for timing in metrics["shard_timings"]:
                assert timing["status"] in ("ran", "cached", "failed")
        assert reports["all_cached"].metrics["cached"] == 1
        (timing,) = reports["all_cached"].metrics["shard_timings"]
        assert timing["status"] == "cached"
        assert timing["seconds"] == 0.0 and timing["attempts"] == 0


class TestCampaignSites:
    def test_connectivity_point_span_and_gauge(self, trace):
        connectivity_campaign(
            StarGraph(4), fault_counts=[2, 4], trials=10, seed=7, label="s4"
        )
        events = trace()
        points = _by_name(events, "campaign.connectivity_point")
        assert [e["attrs"]["fault_count"] for e in points] == [2, 4]
        for event in points:
            assert event["attrs"]["family"] == "s4"
            assert event["attrs"]["trials"] == 10
            assert event["attrs"]["disconnected"] >= 0
        gauges = _by_name(events, "campaign.trials_per_second")
        assert len(gauges) == 2
        assert all(e["value"] > 0 for e in gauges)

    def test_stretch_point_span(self, trace):
        stretch_campaign(
            StarGraph(4),
            fault_counts=[2],
            trials=3,
            pairs_per_trial=2,
            seed=7,
            label="s4",
        )
        events = trace()
        (point,) = _by_name(events, "campaign.stretch_point")
        assert point["attrs"]["pairs"] >= 0
        assert point["attrs"]["unreachable"] >= 0
        assert _by_name(events, "campaign.trials_per_second")

    def test_sampling_pairs_span_and_rate(self, trace):
        sampled_pair_distances("star", 5, 200, 3)
        events = trace()
        (event,) = _by_name(events, "sampling.pairs")
        assert event["attrs"]["family"] == "star"
        assert event["attrs"]["samples"] == 200
        (gauge,) = _by_name(events, "sampling.samples_per_second")
        assert gauge["value"] > 0


class TestTracingChangesNothing:
    """The standing parity contract: traces observe, payloads never move."""

    def _payloads(self, report):
        return [
            json.dumps(
                {"key": record["key"], "payload": record["payload"]},
                sort_keys=True,
            )
            for record in report.records
        ]

    def test_payloads_identical_traced_vs_untraced(self, tmp_path):
        shards = plan_shards(["FIG4", "LEM1"], profile="fast")
        untraced = self._payloads(run_shards(shards))

        telemetry.enable(tmp_path / "serial.jsonl")
        traced = self._payloads(run_shards(shards))
        telemetry.disable()
        assert traced == untraced

        telemetry.enable(tmp_path / "jobs2.jsonl")
        parallel = self._payloads(run_shards(shards, jobs=2))
        telemetry.disable()
        assert parallel == untraced

    def test_kernel_results_identical_traced(self, tmp_path):
        untraced = np.asarray(star_distances_from(tuple(range(5))))
        telemetry.enable(tmp_path / "k.jsonl")
        traced = np.asarray(star_distances_from(tuple(range(5))))
        telemetry.disable()
        assert np.array_equal(traced, untraced)

    def test_campaign_results_identical_traced(self, tmp_path):
        kwargs = dict(fault_counts=[3], trials=10, seed=5, label="parity")
        untraced = connectivity_campaign(StarGraph(4), **kwargs)
        telemetry.enable(tmp_path / "c.jsonl")
        traced = connectivity_campaign(StarGraph(4), **kwargs)
        telemetry.disable()
        assert traced == untraced

"""Unit tests for repro.topology.base (generic Topology behaviour),
repro.topology.properties and repro.topology.nx_adapter."""

import random

import pytest

from repro.exceptions import InvalidNodeError
from repro.topology.base import Topology
from repro.topology.mesh import Mesh
from repro.topology.nx_adapter import bfs_distances, node_connectivity, to_networkx
from repro.topology.properties import (
    connectivity_after_faults,
    degree_histogram,
    edge_count,
    is_vertex_transitive_sample,
    verify_regular,
)
from repro.topology.star import StarGraph


class RingTopology(Topology):
    """A minimal Topology subclass (cycle graph) exercising the base-class defaults."""

    def __init__(self, size: int):
        self._size = size

    def nodes(self):
        return iter((i,) for i in range(self._size))

    def neighbors(self, node):
        node = self.validate_node(node)
        i = node[0]
        return [((i - 1) % self._size,), ((i + 1) % self._size,)]

    @property
    def num_nodes(self):
        return self._size

    def is_node(self, node):
        node = tuple(node)
        return len(node) == 1 and isinstance(node[0], int) and 0 <= node[0] < self._size


class TestBaseDefaults:
    def test_len_iter_contains(self):
        ring = RingTopology(6)
        assert len(ring) == 6
        assert list(ring) == [(i,) for i in range(6)]
        assert (3,) in ring
        assert (7,) not in ring
        assert "x" not in ring

    def test_bfs_distance_and_path(self):
        ring = RingTopology(8)
        assert ring.distance((0,), (4,)) == 4
        path = ring.shortest_path((0,), (3,))
        assert path[0] == (0,) and path[-1] == (3,)
        assert len(path) - 1 == 3

    def test_bfs_diameter_and_average_distance(self):
        ring = RingTopology(6)
        assert ring.diameter() == 3
        assert ring.average_distance() == pytest.approx(1.8)

    def test_edges_enumerated_once(self):
        ring = RingTopology(5)
        assert ring.num_edges == 5
        assert all(u < v for u, v in ring.edges())

    def test_node_index_default_table(self):
        ring = RingTopology(4)
        for index, node in enumerate(ring.nodes()):
            assert ring.node_index(node) == index
            assert ring.node_from_index(index) == node
        with pytest.raises(InvalidNodeError):
            ring.node_from_index(4)

    def test_adjacency_lists(self):
        ring = RingTopology(3)
        adjacency = ring.adjacency_lists()
        assert set(adjacency) == {(0,), (1,), (2,)}
        assert all(len(v) == 2 for v in adjacency.values())

    def test_validate_node_error(self):
        with pytest.raises(InvalidNodeError):
            RingTopology(3).validate_node((9,))


class TestProperties:
    def test_degree_histogram_star(self, star4):
        assert degree_histogram(star4) == {3: 24}

    def test_degree_histogram_mesh(self, mesh_d4):
        histogram = degree_histogram(mesh_d4)
        assert sum(histogram.values()) == 24
        assert max(histogram) == 5 and min(histogram) == 3

    def test_verify_regular(self, star4, mesh_d4):
        assert verify_regular(star4, 3)
        assert not verify_regular(mesh_d4, 3)

    def test_edge_count(self, star4, mesh_d4):
        assert edge_count(star4) == 36
        assert edge_count(mesh_d4) == 46

    def test_vertex_transitive_sample(self, star4, mesh_d4):
        assert is_vertex_transitive_sample(star4, samples=5, rng=random.Random(0))
        # The mesh is not vertex transitive (corner vs interior degrees differ).
        assert not is_vertex_transitive_sample(mesh_d4, samples=10, rng=random.Random(0))

    def test_connectivity_after_faults_star(self, star4):
        rng = random.Random(3)
        nodes = list(star4.nodes())
        for _ in range(10):
            faults = rng.sample(nodes, 2)  # n - 2 = 2 faults for S_4
            assert connectivity_after_faults(star4, faults)

    def test_connectivity_after_cut_vertex_removal(self):
        # A 1-D mesh (path) disconnects when an interior node is removed.
        path = Mesh((5,))
        assert not connectivity_after_faults(path, [(2,)])
        assert connectivity_after_faults(path, [(0,)])

    def test_connectivity_all_removed(self):
        path = Mesh((2,))
        assert not connectivity_after_faults(path, [(0,), (1,)])


class TestNxAdapter:
    def test_to_networkx_counts(self, star4):
        graph = to_networkx(star4)
        assert graph.number_of_nodes() == 24
        assert graph.number_of_edges() == 36

    def test_to_networkx_subset(self, star4):
        subset = [(0, 1, 2, 3), (1, 0, 2, 3), (2, 1, 0, 3)]
        graph = to_networkx(star4, nodes=subset)
        assert graph.number_of_nodes() == 3
        assert graph.number_of_edges() == 2  # both neighbours of the identity, not each other

    def test_bfs_distances_source_zero(self, star4):
        distances = bfs_distances(star4, star4.identity)
        assert distances[star4.identity] == 0
        assert len(distances) == 24

    def test_node_connectivity_is_maximal(self):
        # Maximal fault tolerance: connectivity equals degree n-1.
        assert node_connectivity(StarGraph(3)) == 2
        assert node_connectivity(StarGraph(4)) == 3

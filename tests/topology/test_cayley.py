"""Tests for the generic Cayley-network subsystem.

Three layers of guarantees:

* structural: generator sets are validated, the families have the documented
  degrees/node counts, and the star-*tree* instance is identical (tables and
  all) to the hand-written :class:`~repro.topology.star.StarGraph`;
* closed forms: bubble-sort distances are Kendall-tau inversion counts
  (BFS-verified), diameters match the known pancake numbers and the
  ``n(n-1)/2`` bubble-sort formula;
* oracle parity: BFS distances, diameters and node connectivity of
  :class:`PancakeGraph` / :class:`BubbleSortGraph` agree with networkx on the
  small degrees (the index-service parity suite in
  ``test_index_services.py`` additionally runs the table round-trip, the
  BFS-vs-dict sweep and the fault flood over Cayley instances).
"""

import random

import pytest

from repro.analysis.bounds import bubble_sort_diameter, pancake_diameter_known
from repro.exceptions import InvalidParameterError
from repro.topology.cayley import (
    BubbleSortGraph,
    CayleyGraph,
    PancakeGraph,
    TranspositionCayleyGraph,
    TranspositionTreeGraph,
    bubble_sort_distance,
    prefix_reversal_generators,
    transposition_generators,
)
from repro.topology.nx_adapter import (
    bfs_distances,
    bfs_eccentricity,
    node_connectivity,
)
from repro.topology.properties import (
    connectivity_after_faults,
    is_vertex_transitive_sample,
    verify_regular,
)
from repro.topology.routing import bfs_distances_from, distance_summary
from repro.topology.star import StarGraph


# ----------------------------------------------------------------- structure
class TestGeneratorSets:
    def test_prefix_reversal_generators(self):
        assert prefix_reversal_generators(4) == (
            (1, 0, 2, 3),
            (2, 1, 0, 3),
            (3, 2, 1, 0),
        )

    def test_transposition_generators(self):
        assert transposition_generators(3, ((0, 2),)) == ((2, 1, 0),)

    def test_transposition_validation(self):
        with pytest.raises(InvalidParameterError):
            transposition_generators(3, ((0, 0),))
        with pytest.raises(InvalidParameterError):
            transposition_generators(3, ((0, 3),))
        with pytest.raises(InvalidParameterError):
            transposition_generators(3, ((0, 1), (1, 0)))
        with pytest.raises(InvalidParameterError):
            transposition_generators(3, ())

    def test_cayley_graph_rejects_bad_generators(self):
        with pytest.raises(InvalidParameterError):
            CayleyGraph(3, ((0, 1, 2),))  # identity
        with pytest.raises(InvalidParameterError):
            CayleyGraph(3, ((1, 2, 0),))  # not an involution
        with pytest.raises(InvalidParameterError):
            CayleyGraph(3, ((1, 0, 2),), generator_names=("a", "b"))

    def test_tree_validation(self):
        with pytest.raises(InvalidParameterError):
            TranspositionTreeGraph(4, ((0, 1), (1, 2)))  # too few edges
        with pytest.raises(InvalidParameterError):
            # n-1 edges but disconnected (contains a cycle on 0,1,2).
            TranspositionTreeGraph(4, ((0, 1), (1, 2), (0, 2)))

    def test_positions_connected(self):
        assert TranspositionCayleyGraph(4, ((0, 1), (1, 2), (2, 3))).positions_connected()
        assert not TranspositionCayleyGraph(4, ((0, 1), (2, 3))).positions_connected()


class TestFamilyShapes:
    @pytest.mark.parametrize("n", [2, 3, 4, 5])
    def test_pancake_shape(self, n):
        pancake = PancakeGraph(n)
        assert pancake.num_nodes == StarGraph(n).num_nodes if n >= 2 else True
        assert pancake.node_degree == n - 1
        assert pancake.num_edges == pancake.num_nodes * (n - 1) // 2
        assert verify_regular(pancake, n - 1)

    @pytest.mark.parametrize("n", [2, 3, 4, 5])
    def test_bubble_sort_shape(self, n):
        bubble = BubbleSortGraph(n)
        assert bubble.node_degree == n - 1
        assert verify_regular(bubble, n - 1)

    def test_neighbors_match_generator_order(self):
        pancake = PancakeGraph(4)
        node = (2, 0, 3, 1)
        assert pancake.neighbors(node) == [
            pancake.neighbor_along(node, g) for g in range(pancake.num_generators)
        ]

    def test_generator_between_round_trip(self):
        for graph in (PancakeGraph(4), BubbleSortGraph(4)):
            node = (1, 3, 0, 2)
            for g in range(graph.num_generators):
                neighbor = graph.neighbor_along(node, g)
                assert graph.generator_between(node, neighbor) == g
            with pytest.raises(InvalidParameterError):
                graph.generator_between(node, node)

    def test_neighbor_ranks_match_tables(self):
        pancake = PancakeGraph(4)
        for rank in (0, 7, 23):
            node = pancake.node_from_index(rank)
            for g in range(pancake.num_generators):
                assert pancake.neighbor_ranks(rank, g) == pancake.node_index(
                    pancake.neighbor_along(node, g)
                )

    def test_equality_and_hash(self):
        assert PancakeGraph(4) == PancakeGraph(4)
        assert PancakeGraph(4) != PancakeGraph(5)
        assert hash(PancakeGraph(4)) == hash(PancakeGraph(4))
        assert BubbleSortGraph(4) != PancakeGraph(4)

    def test_vertex_transitive_sample(self):
        # Cayley graphs are vertex transitive; the sampled necessary
        # condition must never refute it.
        for graph in (PancakeGraph(4), BubbleSortGraph(4)):
            assert is_vertex_transitive_sample(graph, samples=4, rng=random.Random(0))


class TestStarTreeIsTheStarGraph:
    """Star = the star-tree instance of the transposition family."""

    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_same_adjacency_and_tables(self, n):
        tree = TranspositionTreeGraph.star(n)
        star = StarGraph(n)
        # The cached move tables are literally the same objects: the star's
        # move_tables(n) is the move_tables_for special case.
        assert tree.move_tables() is star.move_tables()
        for rank in range(0, star.num_nodes, 5):
            node = star.node_from_index(rank)
            assert tree.neighbors(node) == star.neighbors(node)

    def test_same_metric_structure(self):
        tree = TranspositionTreeGraph.star(4)
        star = StarGraph(4)
        summary = distance_summary(tree)
        assert summary.diameter == star.diameter()
        assert summary.average_distance == pytest.approx(star.average_distance())


# --------------------------------------------------------------- closed forms
class TestClosedForms:
    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_bubble_sort_distance_matches_bfs(self, n):
        bubble = BubbleSortGraph(n)
        for index in range(bubble.num_nodes):
            origin = bubble.node_from_index(index)
            sweep = bfs_distances_from(bubble, origin)
            for target_index in range(bubble.num_nodes):
                target = bubble.node_from_index(target_index)
                assert int(sweep[target_index]) == bubble.distance(origin, target)

    @pytest.mark.parametrize("n", [2, 3, 4, 5])
    def test_bubble_sort_diameter_formula(self, n):
        bubble = BubbleSortGraph(n)
        assert bubble.diameter() == bubble_sort_diameter(n) == n * (n - 1) // 2
        assert distance_summary(bubble).diameter == bubble.diameter()

    @pytest.mark.parametrize("n", [2, 3, 4, 5])
    def test_pancake_diameter_matches_known_value(self, n):
        assert distance_summary(PancakeGraph(n)).diameter == pancake_diameter_known(n)

    def test_bubble_sort_distance_validates(self):
        with pytest.raises(InvalidParameterError):
            bubble_sort_distance((0, 1), (0, 1, 2))
        with pytest.raises(InvalidParameterError):
            bubble_sort_distance((0, 0), (0, 1))


# -------------------------------------------------------------- the nx oracle
@pytest.mark.parametrize("family", [PancakeGraph, BubbleSortGraph], ids=lambda c: c.__name__)
@pytest.mark.parametrize("n", [3, 4, 5])
class TestNetworkxOracle:
    """Satellite: independent BFS/diameter/connectivity oracle at degrees 3-5."""

    def test_bfs_distances_match(self, family, n):
        graph = family(n)
        oracle = bfs_distances(graph, graph.identity)
        sweep = bfs_distances_from(graph, graph.identity)
        assert len(oracle) == graph.num_nodes
        for node, expected in oracle.items():
            assert int(sweep[graph.node_index(node)]) == expected

    def test_diameter_matches(self, family, n):
        graph = family(n)
        # Vertex transitivity: one eccentricity is the diameter.
        assert bfs_eccentricity(graph, graph.identity) == distance_summary(graph).diameter

    def test_node_connectivity_is_maximal(self, family, n):
        graph = family(n)
        assert node_connectivity(graph) == n - 1

    def test_survives_degree_minus_one_faults(self, family, n):
        graph = family(n)
        rng = random.Random(n)
        for _ in range(4):
            faults = [
                graph.node_from_index(i)
                for i in rng.sample(range(graph.num_nodes), n - 2)
            ]
            assert connectivity_after_faults(graph, faults)

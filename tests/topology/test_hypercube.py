"""Unit tests for repro.topology.hypercube."""

import pytest

from repro.exceptions import InvalidParameterError
from repro.topology.hypercube import Hypercube
from repro.topology.nx_adapter import bfs_eccentricity


class TestStructure:
    @pytest.mark.parametrize("n,nodes,edges", [(1, 2, 1), (2, 4, 4), (3, 8, 12), (4, 16, 32)])
    def test_counts(self, n, nodes, edges):
        cube = Hypercube(n)
        assert cube.num_nodes == nodes
        assert cube.num_edges == edges
        enumerated = sum(len(cube.neighbors(node)) for node in cube.nodes()) // 2
        assert enumerated == edges

    def test_rejects_zero_dimension(self):
        with pytest.raises(InvalidParameterError):
            Hypercube(0)

    def test_degree_equals_dimension(self, cube3):
        for node in cube3.nodes():
            assert cube3.degree(node) == 3

    def test_neighbors_differ_in_one_bit(self, cube3):
        for node in cube3.nodes():
            for neighbor in cube3.neighbors(node):
                assert sum(a != b for a, b in zip(node, neighbor)) == 1

    def test_neighbor_along(self, cube3):
        assert cube3.neighbor_along((0, 0, 0), 2) == (0, 0, 1)
        with pytest.raises(InvalidParameterError):
            cube3.neighbor_along((0, 0, 0), 3)

    def test_membership(self, cube3):
        assert cube3.is_node((1, 0, 1))
        assert not cube3.is_node((1, 0))
        assert not cube3.is_node((1, 2, 0))

    def test_equality(self):
        assert Hypercube(3) == Hypercube(3)
        assert Hypercube(3) != Hypercube(4)


class TestIndexing:
    def test_round_trip(self, cube3):
        for index in range(8):
            assert cube3.node_index(cube3.node_from_index(index)) == index

    def test_bit_zero_is_least_significant(self, cube3):
        assert cube3.node_from_index(1) == (1, 0, 0)
        assert cube3.node_index((0, 0, 1)) == 4

    def test_out_of_range(self, cube3):
        with pytest.raises(InvalidParameterError):
            cube3.node_from_index(8)


class TestMetric:
    def test_distance_is_hamming(self, cube3):
        assert cube3.distance((0, 0, 0), (1, 1, 1)) == 3
        assert cube3.distance((1, 0, 1), (1, 1, 1)) == 1

    def test_shortest_path_valid(self, cube3):
        path = cube3.shortest_path((0, 0, 0), (1, 0, 1))
        assert path[0] == (0, 0, 0) and path[-1] == (1, 0, 1)
        assert len(path) - 1 == 2
        for a, b in zip(path, path[1:]):
            assert cube3.has_edge(a, b)

    def test_diameter(self, cube3):
        assert cube3.diameter() == 3
        assert bfs_eccentricity(cube3, (0, 0, 0)) == 3

    def test_eccentricity(self, cube3):
        assert cube3.eccentricity((1, 1, 0)) == 3

"""Parity tests for the adjacency-index backend and its vectorised services.

The PR-3 facade contract: every index-native whole-graph service must be
bit-identical to the retained tuple/dict BFS references --

* ``neighbor_index_table`` round-trips against ``neighbors()`` (same
  neighbours, same order) on star, mesh and hypercube;
* ``bfs_distances_from`` / ``distance_matrix`` match ``Topology._bfs_distances``
  (the dict BFS) entry for entry, both with and without the star closed form;
* index-based ``connectivity_after_faults`` matches the dict-of-tuples flood
  fill (``connectivity_after_faults_reference``) on random fault sets;
* ``star_distances_between`` matches the scalar ``star_distance`` closed form;
* ``distance_summary`` matches a diameter/average computed from the dict BFS.
"""

import random

import pytest

from repro.topology.cayley import (
    BubbleSortGraph,
    PancakeGraph,
    TranspositionCayleyGraph,
    TranspositionTreeGraph,
)
from repro.topology.hypercube import Hypercube
from repro.topology.mesh import Mesh, paper_mesh
from repro.topology.properties import (
    connectivity_after_faults,
    connectivity_after_faults_reference,
    degree_histogram,
    edge_count,
    node_degrees,
)
from repro.topology.routing import (
    bfs_distances_from,
    connected_under_alive_mask,
    distance_matrix,
    distance_summary,
    star_distance,
    star_distances_between,
)
from repro.topology.star import StarGraph


def small_topologies():
    return [
        StarGraph(3),
        StarGraph(4),
        StarGraph(5),
        paper_mesh(3),
        paper_mesh(4),
        Mesh((4, 1, 3)),
        Mesh((5,)),
        Hypercube(2),
        Hypercube(4),
        # The Cayley families (PR 4) ride the same parity suite: table
        # round-trip, BFS-vs-dict, fault flood, distance summary.
        PancakeGraph(3),
        PancakeGraph(4),
        BubbleSortGraph(4),
        TranspositionTreeGraph.star(4),
        TranspositionTreeGraph(5, ((0, 2), (1, 2), (2, 3), (3, 4))),
        TranspositionCayleyGraph(4, ((0, 1), (1, 2), (2, 3), (0, 3))),
    ]


@pytest.mark.parametrize("topology", small_topologies(), ids=repr)
class TestNeighborIndexTable:
    def test_round_trip_against_neighbors(self, topology):
        table = topology.neighbor_index_table()
        assert len(table) == topology.num_nodes
        for index in range(topology.num_nodes):
            node = topology.node_from_index(index)
            expected = [topology.node_index(nb) for nb in topology.neighbors(node)]
            row = [int(entry) for entry in table[index]]
            assert row[: len(expected)] == expected
            assert all(entry == -1 for entry in row[len(expected) :])

    def test_cached_per_instance(self, topology):
        assert topology.neighbor_index_table() is topology.neighbor_index_table()

    def test_degrees_match(self, topology):
        degrees = node_degrees(topology)
        for index in range(topology.num_nodes):
            node = topology.node_from_index(index)
            assert int(degrees[index]) == topology.degree(node)


@pytest.mark.parametrize("topology", small_topologies(), ids=repr)
class TestBfsParity:
    def test_bfs_distances_from_matches_dict_reference(self, topology):
        rng = random.Random(0)
        indices = {0, topology.num_nodes - 1}
        indices.update(rng.sample(range(topology.num_nodes), min(4, topology.num_nodes)))
        for index in indices:
            origin = topology.node_from_index(index)
            reference = topology._bfs_distances(origin)  # noqa: SLF001 - the retained oracle
            sweep = bfs_distances_from(topology, origin, use_closed_form=False)
            assert len(reference) == topology.num_nodes  # all connected here
            for node, expected in reference.items():
                assert int(sweep[topology.node_index(node)]) == expected

    def test_closed_form_dispatch_agrees_with_sweep(self, topology):
        origin = topology.node_from_index(0)
        closed = bfs_distances_from(topology, origin)
        sweep = bfs_distances_from(topology, origin, use_closed_form=False)
        assert [int(d) for d in closed] == [int(d) for d in sweep]

    def test_distance_matrix_rows(self, topology):
        if topology.num_nodes > 64:
            pytest.skip("matrix parity is exercised on the small instances")
        matrix = distance_matrix(topology)
        for index in range(topology.num_nodes):
            origin = topology.node_from_index(index)
            reference = topology._bfs_distances(origin)  # noqa: SLF001
            for node, expected in reference.items():
                assert int(matrix[index][topology.node_index(node)]) == expected

    def test_distance_summary_matches_dict_sweep(self, topology):
        summary = distance_summary(topology)
        diameter = 0
        total = 0
        pairs = 0
        for node in topology.nodes():
            reference = topology._bfs_distances(node)  # noqa: SLF001
            diameter = max(diameter, max(reference.values()))
            total += sum(reference.values())
            pairs += len(reference) - 1
        assert summary.diameter == diameter
        assert summary.average_distance == pytest.approx(total / pairs)
        assert summary.connected


@pytest.mark.parametrize("topology", small_topologies(), ids=repr)
class TestConnectivityParity:
    def test_random_fault_sets_match_reference(self, topology):
        rng = random.Random(7)
        nodes = list(topology.nodes())
        for trial in range(8):
            faults = rng.sample(nodes, min(trial, len(nodes) - 1))
            assert connectivity_after_faults(topology, faults) == \
                connectivity_after_faults_reference(topology, faults)

    def test_all_faulty_matches_reference(self, topology):
        nodes = list(topology.nodes())
        assert connectivity_after_faults(topology, nodes) is False
        assert connectivity_after_faults_reference(topology, nodes) is False

    def test_foreign_faults_ignored_like_reference(self, topology):
        foreign = [(99,) * max(1, len(topology.node_from_index(0)))]
        assert connectivity_after_faults(topology, foreign) is True
        assert connectivity_after_faults_reference(topology, foreign) is True


class TestConnectivityCutVertices:
    def test_path_mesh_disconnects_on_interior_fault(self):
        path = Mesh((5,))
        assert not connectivity_after_faults(path, [(2,)])
        assert connectivity_after_faults(path, [(0,)])

    def test_alive_mask_form(self):
        star = StarGraph(4)
        alive = [True] * star.num_nodes
        assert connected_under_alive_mask(star, alive)
        alive[5] = alive[11] = False
        assert connected_under_alive_mask(star, alive)
        assert not connected_under_alive_mask(star, [False] * star.num_nodes)


class TestStarDistancesBetween:
    @pytest.mark.parametrize("n", [3, 4, 5, 6])
    def test_matches_scalar_closed_form(self, n):
        rng = random.Random(n)
        star = StarGraph(n)
        sources = []
        targets = []
        for _ in range(40):
            sources.append(star.node_from_index(rng.randrange(star.num_nodes)))
            targets.append(star.node_from_index(rng.randrange(star.num_nodes)))
        batch = star_distances_between(sources, targets)
        for k in range(40):
            assert int(batch[k]) == star_distance(sources[k], targets[k])


class TestPropertiesOnTable:
    def test_degree_histogram_and_edge_count_vs_enumeration(self):
        for topology in (StarGraph(4), paper_mesh(4), Hypercube(3)):
            by_hand = {}
            edges = 0
            for node in topology.nodes():
                degree = len(topology.neighbors(node))
                by_hand[degree] = by_hand.get(degree, 0) + 1
                edges += degree
            assert degree_histogram(topology) == by_hand
            assert edge_count(topology) == edges // 2

"""Unit tests for repro.topology.mesh (open meshes and the paper mesh D_n)."""

import math

import pytest

from repro.exceptions import InvalidNodeError, InvalidParameterError
from repro.topology.mesh import Mesh, paper_mesh
from repro.topology.nx_adapter import bfs_eccentricity


class TestConstruction:
    def test_sides_stored_as_tuple(self):
        assert Mesh([4, 3, 2]).sides == (4, 3, 2)

    def test_rejects_empty_sides(self):
        with pytest.raises(InvalidParameterError):
            Mesh(())

    def test_rejects_nonpositive_side(self):
        with pytest.raises(InvalidParameterError):
            Mesh((3, 0))

    def test_rejects_non_int_side(self):
        with pytest.raises(InvalidParameterError):
            Mesh((3, 2.5))

    def test_equality_and_hash(self):
        assert Mesh((2, 3)) == Mesh((2, 3))
        assert Mesh((2, 3)) != Mesh((3, 2))
        assert hash(Mesh((2, 3))) == hash(Mesh((2, 3)))


class TestPaperMesh:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 6])
    def test_sides_and_size(self, n):
        mesh = paper_mesh(n)
        assert mesh.sides == tuple(range(n, 1, -1))
        assert mesh.num_nodes == math.factorial(n)
        assert mesh.ndim == n - 1

    def test_paper_mesh_rejects_n_below_2(self):
        with pytest.raises(InvalidParameterError):
            paper_mesh(1)

    @pytest.mark.parametrize("n,expected", [(3, 3), (4, 5), (5, 7)])
    def test_max_degree_is_2n_minus_3(self, n, expected):
        assert paper_mesh(n).max_degree() == expected
        # And the interior node (1,1,...,1) attains it.
        interior = tuple(1 for _ in range(n - 1))
        assert len(paper_mesh(n).neighbors(interior)) == expected

    def test_dimension_index_helpers(self, mesh_d4):
        # Paper dimension 1 has length 2 and is the last tuple coordinate.
        assert mesh_d4.coordinate_of_dimension(1) == 2
        assert mesh_d4.side_of_dimension(1) == 2
        assert mesh_d4.coordinate_of_dimension(3) == 0
        assert mesh_d4.side_of_dimension(3) == 4
        with pytest.raises(InvalidParameterError):
            mesh_d4.coordinate_of_dimension(4)


class TestMembership:
    def test_valid_and_invalid_nodes(self, mesh_d4):
        assert mesh_d4.is_node((3, 2, 1))
        assert not mesh_d4.is_node((4, 0, 0))
        assert not mesh_d4.is_node((0, 0))
        assert not mesh_d4.is_node((0, 0, -1))

    def test_validate_raises(self, mesh_d4):
        with pytest.raises(InvalidNodeError):
            mesh_d4.validate_node((0, 3, 0))


class TestNeighbors:
    def test_corner_degree(self, mesh_d4):
        assert mesh_d4.degree((0, 0, 0)) == 3

    def test_interior_degree(self, mesh_d4):
        # The length-2 dimension can only ever contribute one neighbour, so the
        # maximum degree of D_4 is 2n - 3 = 5 (the Lemma 1 node (1,1,1)).
        assert mesh_d4.degree((1, 1, 1)) == 5
        assert mesh_d4.degree((2, 1, 0)) == 5

    def test_neighbors_differ_by_one_in_one_coordinate(self, mesh_d4):
        for node in mesh_d4.nodes():
            for neighbor in mesh_d4.neighbors(node):
                diffs = [abs(a - b) for a, b in zip(node, neighbor)]
                assert sum(diffs) == 1

    def test_neighbor_along_valid(self, mesh_d4):
        assert mesh_d4.neighbor_along((1, 1, 0), 2, +1) == (1, 1, 1)
        assert mesh_d4.neighbor_along((1, 1, 0), 0, -1) == (0, 1, 0)

    def test_neighbor_along_no_wraparound(self, mesh_d4):
        with pytest.raises(InvalidParameterError):
            mesh_d4.neighbor_along((0, 0, 0), 0, -1)
        with pytest.raises(InvalidParameterError):
            mesh_d4.neighbor_along((3, 2, 1), 2, +1)

    def test_neighbor_along_rejects_bad_args(self, mesh_d4):
        with pytest.raises(InvalidParameterError):
            mesh_d4.neighbor_along((0, 0, 0), 0, 2)
        with pytest.raises(InvalidParameterError):
            mesh_d4.neighbor_along((0, 0, 0), 5, 1)


class TestCountsAndIndexing:
    def test_edge_count_formula_matches_enumeration(self, mesh_d4):
        enumerated = sum(len(mesh_d4.neighbors(node)) for node in mesh_d4.nodes()) // 2
        assert mesh_d4.num_edges == enumerated == 46

    def test_edge_count_2d(self):
        # 3x4 grid: 3*(4-1) + 4*(3-1) = 17.
        assert Mesh((3, 4)).num_edges == 17

    def test_index_round_trip(self, mesh_d4):
        for index, node in enumerate(mesh_d4.nodes()):
            assert mesh_d4.node_index(node) == index
            assert mesh_d4.node_from_index(index) == node


class TestMetric:
    def test_distance_is_manhattan(self, mesh_d4):
        assert mesh_d4.distance((0, 0, 0), (3, 2, 1)) == 6
        assert mesh_d4.distance((1, 2, 0), (2, 0, 1)) == 4

    def test_shortest_path_valid(self, mesh_d4):
        path = mesh_d4.shortest_path((0, 0, 0), (3, 2, 1))
        assert path[0] == (0, 0, 0) and path[-1] == (3, 2, 1)
        assert len(path) - 1 == 6
        for a, b in zip(path, path[1:]):
            assert mesh_d4.has_edge(a, b)

    def test_diameter_formula_and_bfs(self, mesh_d4):
        assert mesh_d4.diameter() == 6
        assert bfs_eccentricity(mesh_d4, (0, 0, 0)) == 6

    def test_single_dimension_mesh_is_a_path(self):
        mesh = Mesh((5,))
        assert mesh.diameter() == 4
        assert mesh.degree((0,)) == 1
        assert mesh.degree((2,)) == 2

"""Unit tests for repro.topology.routing (closed-form distances and routing paths)."""

from itertools import permutations as itertools_permutations

import pytest

from repro.exceptions import InvalidParameterError
from repro.permutations.generators import star_neighbors
from repro.topology.routing import (
    hypercube_distance,
    hypercube_route,
    mesh_distance,
    mesh_route,
    star_distance,
    star_distance_profile,
    star_route,
)


class TestStarDistance:
    def test_identity_distance_zero(self):
        assert star_distance((0, 1, 2, 3), (0, 1, 2, 3)) == 0

    def test_generator_neighbors_at_distance_one(self):
        node = (2, 0, 3, 1)
        for neighbor in star_neighbors(node):
            assert star_distance(node, neighbor) == 1

    def test_symbol_transposition_distances(self):
        # Swap not involving the front symbol: distance 3 (Lemma 2).
        assert star_distance((3, 2, 1, 0), (3, 1, 2, 0)) == 3
        # Swap involving the front symbol: distance 1.
        assert star_distance((3, 2, 1, 0), (0, 2, 1, 3)) == 1

    def test_symmetric(self):
        u, v = (3, 0, 2, 1), (1, 2, 0, 3)
        assert star_distance(u, v) == star_distance(v, u)

    def test_vertex_transitive(self):
        # Distance is invariant under relabelling (composition with a fixed permutation).
        u, v = (3, 0, 2, 1), (1, 2, 0, 3)
        relabel = {0: 2, 1: 0, 2: 3, 3: 1}
        u2 = tuple(relabel[x] for x in u)
        v2 = tuple(relabel[x] for x in v)
        assert star_distance(u, v) == star_distance(u2, v2)

    def test_rejects_degree_mismatch(self):
        with pytest.raises(InvalidParameterError):
            star_distance((0, 1), (0, 1, 2))

    def test_rejects_non_permutation(self):
        with pytest.raises(InvalidParameterError):
            star_distance((0, 0, 1), (0, 1, 2))

    def test_profile_consistency(self):
        distance, cycles, displaced = star_distance_profile((3, 2, 1, 0), (0, 1, 2, 3))
        assert distance == star_distance((3, 2, 1, 0), (0, 1, 2, 3))
        assert cycles == 2 and displaced == 4

    def test_max_distance_is_diameter(self):
        worst = max(
            star_distance((0, 1, 2, 3), node) for node in itertools_permutations(range(4))
        )
        assert worst == 4  # floor(3*(4-1)/2)


class TestStarRoute:
    def test_route_endpoints_and_length(self):
        source, target = (0, 1, 2, 3), (3, 2, 1, 0)
        path = star_route(source, target)
        assert path[0] == source and path[-1] == target
        assert len(path) - 1 == star_distance(source, target)

    def test_route_hops_are_generator_moves(self):
        source, target = (2, 4, 1, 0, 3), (0, 1, 2, 3, 4)
        path = star_route(source, target)
        for a, b in zip(path, path[1:]):
            differing = [i for i in range(5) if a[i] != b[i]]
            assert len(differing) == 2 and 0 in differing

    def test_route_optimal_for_all_s4_pairs_from_identity(self):
        identity = (0, 1, 2, 3)
        for target in itertools_permutations(range(4)):
            path = star_route(identity, target)
            assert len(path) - 1 == star_distance(identity, target)

    def test_trivial_route(self):
        assert star_route((1, 0, 2), (1, 0, 2)) == [(1, 0, 2)]


class TestMeshRouting:
    def test_distance_manhattan(self):
        assert mesh_distance((0, 0), (2, 3), (3, 4)) == 5

    def test_route_dimension_order(self):
        path = mesh_route((0, 0), (2, 1), (3, 2))
        assert path == [(0, 0), (1, 0), (2, 0), (2, 1)]

    def test_route_handles_negative_direction(self):
        path = mesh_route((2, 1), (0, 0), (3, 2))
        assert path[0] == (2, 1) and path[-1] == (0, 0)
        assert len(path) - 1 == 3

    def test_rejects_out_of_range_coordinates(self):
        with pytest.raises(InvalidParameterError):
            mesh_distance((0, 4), (0, 0), (3, 4))
        with pytest.raises(InvalidParameterError):
            mesh_route((0, 0), (3, 0), (3, 4))

    def test_rejects_length_mismatch(self):
        with pytest.raises(InvalidParameterError):
            mesh_distance((0, 0), (0, 0, 0), (3, 4))


class TestHypercubeRouting:
    def test_distance_hamming(self):
        assert hypercube_distance((0, 1, 0), (1, 1, 1)) == 2

    def test_route_flips_bits_in_order(self):
        path = hypercube_route((0, 0, 0), (1, 0, 1))
        assert path == [(0, 0, 0), (1, 0, 0), (1, 0, 1)]

    def test_rejects_non_bits(self):
        with pytest.raises(InvalidParameterError):
            hypercube_distance((0, 2), (0, 0))

    def test_rejects_dimension_mismatch(self):
        with pytest.raises(InvalidParameterError):
            hypercube_route((0, 0), (0, 0, 0))

"""Unit tests for repro.topology.star (the star graph S_n)."""

import math

import pytest

from repro.exceptions import InvalidNodeError, InvalidParameterError
from repro.topology.nx_adapter import bfs_distances, bfs_eccentricity
from repro.topology.star import StarGraph


class TestConstruction:
    def test_rejects_degree_below_two(self):
        with pytest.raises(InvalidParameterError):
            StarGraph(1)
        with pytest.raises(InvalidParameterError):
            StarGraph(0)

    def test_equality_and_hash(self):
        assert StarGraph(4) == StarGraph(4)
        assert StarGraph(4) != StarGraph(5)
        assert hash(StarGraph(3)) == hash(StarGraph(3))

    def test_repr(self):
        assert "StarGraph(n=4)" in repr(StarGraph(4))


class TestCounts:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 6])
    def test_node_count_is_factorial(self, n):
        assert StarGraph(n).num_nodes == math.factorial(n)

    @pytest.mark.parametrize("n", [2, 3, 4, 5])
    def test_edge_count_formula_matches_enumeration(self, n):
        star = StarGraph(n)
        enumerated = sum(len(star.neighbors(node)) for node in star.nodes()) // 2
        assert star.num_edges == enumerated == math.factorial(n) * (n - 1) // 2

    def test_nodes_enumerated_once_each(self, star4):
        nodes = list(star4.nodes())
        assert len(nodes) == len(set(nodes)) == 24


class TestMembership:
    def test_valid_nodes(self, star4):
        assert star4.is_node((3, 2, 1, 0))
        assert (0, 1, 2, 3) in star4

    def test_invalid_nodes(self, star4):
        assert not star4.is_node((0, 1, 2))
        assert not star4.is_node((0, 0, 1, 2))
        assert not star4.is_node((0, 1, 2, 4))
        assert [0, 1, 2, 3] in star4  # list coerced to tuple

    def test_validate_node_raises(self, star4):
        with pytest.raises(InvalidNodeError):
            star4.validate_node((1, 1, 2, 3))


class TestNeighbors:
    def test_degree_is_n_minus_1(self, star4):
        for node in star4.nodes():
            assert star4.degree(node) == 3

    def test_neighbor_along_matches_paper_notation(self, star4):
        # Paper: pi^(i) exchanges a_{n-1} with a_i; generator j = n-1-i here.
        node = (0, 1, 2, 3)
        assert star4.neighbor_along(node, 1) == (1, 0, 2, 3)
        assert star4.neighbor_along(node, 3) == (3, 1, 2, 0)

    def test_generator_between_roundtrip(self, star4):
        node = (2, 3, 0, 1)
        for j in range(1, 4):
            neighbor = star4.neighbor_along(node, j)
            assert star4.generator_between(node, neighbor) == j

    def test_generator_between_rejects_non_adjacent(self, star4):
        with pytest.raises(InvalidParameterError):
            star4.generator_between((0, 1, 2, 3), (1, 0, 3, 2))

    def test_adjacency_is_symmetric(self, star4):
        for node in star4.nodes():
            for neighbor in star4.neighbors(node):
                assert node in star4.neighbors(neighbor)

    def test_has_edge(self, star4):
        assert star4.has_edge((0, 1, 2, 3), (1, 0, 2, 3))
        assert not star4.has_edge((0, 1, 2, 3), (0, 1, 3, 2))


class TestIndexing:
    def test_index_round_trip(self, star4):
        for index, node in enumerate(star4.nodes()):
            assert star4.node_index(node) == index
            assert star4.node_from_index(index) == node

    def test_index_out_of_range(self, star4):
        with pytest.raises(InvalidParameterError):
            star4.node_from_index(24)


class TestMetric:
    def test_identity_and_paper_origin(self, star4):
        assert star4.identity == (0, 1, 2, 3)
        assert star4.paper_origin == (3, 2, 1, 0)

    def test_distance_zero_and_one(self, star4):
        assert star4.distance((0, 1, 2, 3), (0, 1, 2, 3)) == 0
        assert star4.distance((0, 1, 2, 3), (1, 0, 2, 3)) == 1

    @pytest.mark.parametrize("n", [3, 4])
    def test_distance_matches_bfs_from_identity(self, n):
        star = StarGraph(n)
        oracle = bfs_distances(star, star.identity)
        for node, expected in oracle.items():
            assert star.distance(star.identity, node) == expected

    def test_distance_is_symmetric(self, star4):
        nodes = list(star4.nodes())
        for u in nodes[:6]:
            for v in nodes[-6:]:
                assert star4.distance(u, v) == star4.distance(v, u)

    def test_shortest_path_is_valid_and_optimal(self, star4):
        source, target = (0, 1, 2, 3), (3, 2, 1, 0)
        path = star4.shortest_path(source, target)
        assert path[0] == source and path[-1] == target
        assert len(path) - 1 == star4.distance(source, target)
        for a, b in zip(path, path[1:]):
            assert star4.has_edge(a, b)

    @pytest.mark.parametrize("n,expected", [(2, 1), (3, 3), (4, 4), (5, 6), (6, 7), (10, 13)])
    def test_diameter_closed_form(self, n, expected):
        assert StarGraph(n).diameter() == expected

    @pytest.mark.parametrize("n", [3, 4])
    def test_diameter_matches_bfs(self, n):
        star = StarGraph(n)
        assert bfs_eccentricity(star, star.identity) == star.diameter()

    def test_eccentricity_equals_diameter(self, star4):
        assert star4.eccentricity((1, 3, 0, 2)) == star4.diameter()

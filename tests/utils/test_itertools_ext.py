"""Unit tests for repro.utils.itertools_ext."""

import pytest

from repro.utils.itertools_ext import argmax, argmin, chunked, first, pairwise, product_of


class TestPairwise:
    def test_basic(self):
        assert list(pairwise([1, 2, 3, 4])) == [(1, 2), (2, 3), (3, 4)]

    def test_empty_and_singleton(self):
        assert list(pairwise([])) == []
        assert list(pairwise([7])) == []

    def test_works_on_generators(self):
        assert list(pairwise(iter("abc"))) == [("a", "b"), ("b", "c")]


class TestChunked:
    def test_even_split(self):
        assert list(chunked(range(6), 3)) == [[0, 1, 2], [3, 4, 5]]

    def test_ragged_tail(self):
        assert list(chunked(range(5), 2)) == [[0, 1], [2, 3], [4]]

    def test_size_one(self):
        assert list(chunked("ab", 1)) == [["a"], ["b"]]

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            list(chunked(range(3), 0))


class TestFirst:
    def test_returns_first(self):
        assert first([3, 2, 1]) == 3

    def test_default_on_empty(self):
        assert first([], default="fallback") == "fallback"
        assert first([]) is None


class TestProductOf:
    def test_product(self):
        assert product_of([2, 3, 4]) == 24

    def test_empty_is_one(self):
        assert product_of([]) == 1


class TestArgminArgmax:
    def test_argmax_basic(self):
        assert argmax([1, 5, 3]) == 1

    def test_argmax_first_on_ties(self):
        assert argmax([2, 7, 7]) == 1

    def test_argmax_with_key(self):
        assert argmax(["a", "bbb", "cc"], key=len) == 1

    def test_argmin_basic(self):
        assert argmin([4, 2, 9]) == 1

    def test_argmin_with_key(self):
        assert argmin(["aaa", "b", "cc"], key=len) == 1

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            argmax([])
        with pytest.raises(ValueError):
            argmin([])

"""Unit tests for repro.utils.mixed_radix."""

import math

import pytest

from repro.exceptions import InvalidParameterError
from repro.utils.mixed_radix import (
    MixedRadix,
    iter_mixed_radix,
    mixed_radix_decode,
    mixed_radix_encode,
)


class TestMixedRadixBasics:
    def test_size_is_product_of_radices(self):
        assert MixedRadix((4, 3, 2)).size == 24
        assert MixedRadix((5,)).size == 5

    def test_paper_mesh_radices_give_factorial(self):
        for n in range(2, 8):
            radices = tuple(range(n, 1, -1))
            assert MixedRadix(radices).size == math.factorial(n)

    def test_ndigits(self):
        assert MixedRadix((4, 3, 2)).ndigits == 3

    def test_len_matches_size(self):
        mr = MixedRadix((3, 2))
        assert len(mr) == 6

    def test_equality_and_hash(self):
        assert MixedRadix((4, 3)) == MixedRadix((4, 3))
        assert MixedRadix((4, 3)) != MixedRadix((3, 4))
        assert hash(MixedRadix((4, 3))) == hash(MixedRadix((4, 3)))

    def test_rejects_empty(self):
        with pytest.raises(InvalidParameterError):
            MixedRadix(())

    def test_rejects_zero_radix(self):
        with pytest.raises(InvalidParameterError):
            MixedRadix((3, 0))


class TestEncodeDecode:
    def test_encode_origin_is_zero(self):
        assert MixedRadix((4, 3, 2)).encode((0, 0, 0)) == 0

    def test_encode_maximum(self):
        assert MixedRadix((4, 3, 2)).encode((3, 2, 1)) == 23

    def test_round_trip_every_value(self):
        mr = MixedRadix((3, 4, 2))
        for value in range(mr.size):
            assert mr.encode(mr.decode(value)) == value

    def test_decode_then_encode_is_identity_on_tuples(self):
        mr = MixedRadix((2, 5, 3))
        for digits in mr:
            assert mr.decode(mr.encode(digits)) == digits

    def test_encode_rejects_wrong_length(self):
        with pytest.raises(InvalidParameterError):
            MixedRadix((4, 3)).encode((1, 1, 1))

    def test_encode_rejects_out_of_range_digit(self):
        with pytest.raises(InvalidParameterError):
            MixedRadix((4, 3)).encode((4, 0))

    def test_decode_rejects_out_of_range_value(self):
        with pytest.raises(InvalidParameterError):
            MixedRadix((4, 3)).decode(12)
        with pytest.raises(InvalidParameterError):
            MixedRadix((4, 3)).decode(-1)

    def test_decode_rejects_non_int(self):
        with pytest.raises(InvalidParameterError):
            MixedRadix((4, 3)).decode(1.5)

    def test_functional_forms_match_class(self):
        assert mixed_radix_encode((1, 2, 1), (4, 3, 2)) == MixedRadix((4, 3, 2)).encode((1, 2, 1))
        assert mixed_radix_decode(11, (4, 3, 2)) == MixedRadix((4, 3, 2)).decode(11)


class TestIteration:
    def test_iterates_in_encoding_order(self):
        mr = MixedRadix((2, 3))
        assert [mr.encode(d) for d in mr] == list(range(6))

    def test_iter_mixed_radix_count(self):
        assert sum(1 for _ in iter_mixed_radix((3, 2, 2))) == 12

    def test_iter_mixed_radix_first_and_last(self):
        values = list(iter_mixed_radix((2, 2)))
        assert values[0] == (0, 0)
        assert values[-1] == (1, 1)

    def test_iter_rejects_bad_radix(self):
        with pytest.raises(InvalidParameterError):
            list(iter_mixed_radix((2, 0)))

"""Unit tests for the perf-CI compare mode of benchmarks/run_bench.py."""

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

spec = importlib.util.spec_from_file_location(
    "run_bench", REPO_ROOT / "benchmarks" / "run_bench.py"
)
run_bench = importlib.util.module_from_spec(spec)
spec.loader.exec_module(run_bench)


def snapshot(medians):
    return {
        "date": "2026-01-01",
        "commit": "abc1234",
        "medians": {
            name: {"median_seconds": seconds, "rounds": 3}
            for name, seconds in medians.items()
        },
    }


class TestCompare:
    def test_no_regression(self, capsys):
        baseline = snapshot({"a": 1.0, "b": 0.5})
        current = snapshot({"a": 0.9, "b": 0.55})
        regressions = run_bench.compare(baseline, current, threshold=0.20)
        assert regressions == []
        out = capsys.readouterr().out
        assert "1.11x" in out and "REGRESSION" not in out

    def test_flags_regressions_beyond_threshold(self, capsys):
        baseline = snapshot({"a": 1.0, "b": 1.0})
        current = snapshot({"a": 1.25, "b": 1.15})
        regressions = run_bench.compare(baseline, current, threshold=0.20)
        assert regressions == ["a"]
        assert "REGRESSION" in capsys.readouterr().out

    def test_new_and_gone_benchmarks_never_fail(self, capsys):
        baseline = snapshot({"a": 1.0, "gone": 1.0})
        current = snapshot({"a": 1.0, "new": 9.9})
        assert run_bench.compare(baseline, current, threshold=0.20) == []
        out = capsys.readouterr().out
        assert "(new)" in out and "(gone)" in out

    def test_disjoint_snapshots(self, capsys):
        assert run_bench.compare(snapshot({"a": 1.0}), snapshot({"b": 1.0}), 0.2) == []
        assert "no shared benchmarks" in capsys.readouterr().out

    def test_sub_floor_slowdowns_do_not_gate(self, capsys):
        # A 100 us benchmark jitters by double without meaning anything.
        baseline = snapshot({"micro": 0.0001, "macro": 1.0})
        current = snapshot({"micro": 0.0002, "macro": 1.0})
        regressions = run_bench.compare(baseline, current, 0.20, min_median=0.0005)
        assert regressions == []
        assert "below noise floor" in capsys.readouterr().out


class TestLatestSnapshot:
    def test_picks_newest_by_name(self, tmp_path, monkeypatch):
        monkeypatch.setattr(run_bench, "REPO_ROOT", tmp_path)
        for name in ("BENCH_2026-07-01.json", "BENCH_2026-07-28.json"):
            (tmp_path / name).write_text(json.dumps({"medians": {}}))
        assert run_bench.latest_snapshot_path().name == "BENCH_2026-07-28.json"

    def test_exclude(self, tmp_path, monkeypatch):
        monkeypatch.setattr(run_bench, "REPO_ROOT", tmp_path)
        newest = tmp_path / "BENCH_2026-07-28.json"
        older = tmp_path / "BENCH_2026-07-01.json"
        for path in (newest, older):
            path.write_text(json.dumps({"medians": {}}))
        assert run_bench.latest_snapshot_path(exclude=newest) == older

    def test_empty(self, tmp_path, monkeypatch):
        monkeypatch.setattr(run_bench, "REPO_ROOT", tmp_path)
        assert run_bench.latest_snapshot_path() is None

"""Unit tests for repro.utils.validation."""

import pytest

from repro.exceptions import InvalidParameterError
from repro.utils.validation import (
    check_in_range,
    check_positive_int,
    check_probability,
    check_sequence_of_ints,
)


class TestCheckPositiveInt:
    def test_accepts_valid_value(self):
        assert check_positive_int(3, "x") == 3

    def test_accepts_custom_minimum(self):
        assert check_positive_int(0, "x", minimum=0) == 0

    def test_rejects_below_minimum(self):
        with pytest.raises(InvalidParameterError, match="x must be >= 1"):
            check_positive_int(0, "x")

    def test_rejects_bool(self):
        with pytest.raises(InvalidParameterError, match="must be an int"):
            check_positive_int(True, "x")

    def test_rejects_float(self):
        with pytest.raises(InvalidParameterError):
            check_positive_int(2.0, "x")

    def test_rejects_string(self):
        with pytest.raises(InvalidParameterError):
            check_positive_int("3", "x")

    def test_error_message_names_parameter(self):
        with pytest.raises(InvalidParameterError, match="degree"):
            check_positive_int(-1, "degree")


class TestCheckInRange:
    def test_accepts_bounds(self):
        assert check_in_range(1, "x", 1, 5) == 1
        assert check_in_range(5, "x", 1, 5) == 5

    def test_rejects_outside(self):
        with pytest.raises(InvalidParameterError):
            check_in_range(6, "x", 1, 5)
        with pytest.raises(InvalidParameterError):
            check_in_range(0, "x", 1, 5)

    def test_rejects_bool(self):
        with pytest.raises(InvalidParameterError):
            check_in_range(True, "x", 0, 2)


class TestCheckSequenceOfInts:
    def test_converts_to_tuple(self):
        assert check_sequence_of_ints([1, 2, 3], "x") == (1, 2, 3)

    def test_accepts_empty(self):
        assert check_sequence_of_ints([], "x") == ()

    def test_accepts_generator(self):
        assert check_sequence_of_ints((i for i in range(3)), "x") == (0, 1, 2)

    def test_rejects_non_int_elements(self):
        with pytest.raises(InvalidParameterError, match="only ints"):
            check_sequence_of_ints([1, "2"], "x")

    def test_rejects_bool_elements(self):
        with pytest.raises(InvalidParameterError):
            check_sequence_of_ints([1, True], "x")


class TestCheckProbability:
    def test_accepts_bounds(self):
        assert check_probability(0, "p") == 0.0
        assert check_probability(1, "p") == 1.0
        assert check_probability(0.5, "p") == 0.5

    def test_rejects_outside(self):
        with pytest.raises(InvalidParameterError):
            check_probability(1.5, "p")
        with pytest.raises(InvalidParameterError):
            check_probability(-0.1, "p")

    def test_rejects_non_numeric(self):
        with pytest.raises(InvalidParameterError):
            check_probability("high", "p")
